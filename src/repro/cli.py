"""Command-line interface: ``repro-decluster`` / ``python -m repro.cli``.

Subcommands
-----------
``list``
    Show available datasets and declustering methods.
``dataset NAME``
    Generate a dataset, build its grid file, print the structure.
``decluster NAME --method M --disks K``
    Decluster a dataset and report balance / response-time statistics.
``experiment ID``
    Regenerate a paper figure/table (fig2..fig7, table1..table5).
``cluster-sim NAME --scheduler S --replica-policy P``
    Run the closed-loop cluster simulator with the request-pipeline
    engine knobs exposed: disk scheduling discipline, replica-selection
    policy and admission control (see ``docs/architecture.md``).
``open-sim NAME --rate R --max-inflight K --deadline D``
    Open-system run: Poisson arrivals at R queries/s, optional bounded
    admission and deadline shedding; reports latency percentiles and
    the shed fraction.
``fault-sim NAME --scheme S --crash-node N --crash-time T``
    Run the simulated cluster with a mid-run node crash and report the
    degraded-mode statistics (timeouts, retries, failovers, availability).
``online-sim NAME --write-ratio W --placement P``
    Drive a mixed read/write workload against a *live* grid file: writes
    split/merge buckets online, a placement policy assigns new buckets to
    disks, and a degradation monitor triggers bounded reorganizations
    (see ``docs/online.md``).
``trace record NAME OUT`` / ``trace summarize FILE`` / ``trace diff A B``
    Record a traced (optionally fault-injected) cluster run to a JSONL
    file, fold a trace into per-disk utilization / per-phase timings /
    event counts, or diff two traces (see ``docs/observability.md``).
``fsck PATH``
    Walk a durable store's pages, verify every CRC and the allocator
    free-list, and report (with ``--repair``: repair from the WAL)
    corrupt pages (see ``docs/storage.md``).
``bounds``
    Bounds-tightness report: measure each scheme's exact worst-case
    additive error over every box query of a Cartesian grid and place it
    between its theory ceiling and the best known lower bound (see
    ``docs/methods.md``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import available_methods, make_method
from repro.datasets import DATASETS, build_gridfile, load
from repro.experiments import (
    fig2_gridfiles,
    fig3_conflict,
    fig4_index_based,
    fig6_minimax,
    fig7_querysize,
    render_sweep,
    series_text,
    table1_balance,
    table23_closest_pairs,
    table4_animation,
    table5_random,
)
from repro.experiments.report import render_cluster_rows
from repro.sim import degree_of_data_balance, evaluate_queries, square_queries

__all__ = ["main"]


def _cmd_list(args) -> int:
    print("datasets:")
    for name in sorted(DATASETS):
        print(f"  {name}")
    print("methods:")
    for spec in available_methods():
        print(f"  {spec}")
    print("experiments: fig2 fig3 fig4 fig6 fig7 table1 table2 table3 table4 table5")
    return 0


def _cmd_dataset(args) -> int:
    ds = load(args.name, rng=args.seed)
    gf = build_gridfile(ds)
    print(f"{ds.name}: {ds.description}")
    print(gf.stats())
    return 0


def _cmd_decluster(args) -> int:
    ds = load(args.name, rng=args.seed)
    gf = build_gridfile(ds)
    method = make_method(args.method)
    assignment = method.assign(gf, args.disks, rng=args.seed)
    queries = square_queries(args.queries, args.ratio, ds.domain_lo, ds.domain_hi, rng=args.seed)
    ev = evaluate_queries(gf, assignment, queries, args.disks)
    balance = degree_of_data_balance(assignment, args.disks, gf.bucket_sizes())
    print(f"dataset            : {ds.name} ({gf.stats()})")
    print(f"method             : {method.name}")
    print(f"disks              : {args.disks}")
    print(f"mean response time : {ev.mean_response:.3f} buckets (optimal {ev.mean_optimal:.3f})")
    print(f"degree of balance  : {balance:.3f}")
    if args.out:
        from repro.gridfile import export_declustered

        paths = export_declustered(gf, assignment, args.out)
        print(f"declustered layout : {len(paths) - 1} disk files + catalog in {args.out}")
    return 0


def _maybe_plot(args, sweep, title: str) -> None:
    if getattr(args, "plot", False):
        from repro._util import line_chart

        print(line_chart(sweep.disks, sweep.response_series(), title=title))
        print()


def _cmd_experiment(args) -> int:
    exp = args.id.lower()
    quick = args.quick
    seed = args.seed
    jobs = args.jobs
    if exp == "fig2":
        if getattr(args, "plot", False):
            from repro.datasets import build_gridfile as _build, load as _load
            from repro.experiments.report import ascii_gridfile_map

            for name in ("uniform.2d", "hot.2d", "correl.2d"):
                gf = _build(_load(name, rng=seed))
                print(f"--- {name} ---")
                print(ascii_gridfile_map(gf, max_width=60))
                print()
        else:
            for name, stats in fig2_gridfiles(rng=seed).items():
                print(f"{name}: {stats}")
    elif exp == "fig3":
        for base, sweep in fig3_conflict(rng=seed, quick=quick, jobs=jobs).items():
            print(render_sweep(sweep, f"Figure 3 ({base}, hot.2d, r=0.05)"))
            print()
    elif exp == "fig4":
        for name, sweep in fig4_index_based(rng=seed, quick=quick, jobs=jobs).items():
            print(render_sweep(sweep, f"Figure 4 ({name}, r=0.05)"))
            _maybe_plot(args, sweep, f"Figure 4 ({name})")
            print()
    elif exp == "fig6":
        for name, sweep in fig6_minimax(rng=seed, quick=quick, jobs=jobs).items():
            print(render_sweep(sweep, f"Figure 6 ({name}, r=0.01)"))
            _maybe_plot(args, sweep, f"Figure 6 ({name})")
            print()
    elif exp == "fig7":
        res = fig7_querysize(rng=seed, quick=quick, jobs=jobs)
        resp = {f"{m} r={r}": v for (m, r), v in res.response.items()}
        spd = {f"{m} r={r}": list(v) for (m, r), v in res.speedup.items()}
        print(series_text("disks", res.disks, resp, title="Figure 7 (response, stock.3d)"))
        print()
        print(series_text("disks", res.disks, spd, title="Figure 7 (speedup, stock.3d)"))
    elif exp == "table1":
        sweep = table1_balance(rng=seed, quick=quick, jobs=jobs)
        print(render_sweep(sweep, "Table 1 (degree of data balance, hot.2d)", metric="balance"))
    elif exp in ("table2", "table3"):
        dataset = "dsmc.3d" if exp == "table2" else "stock.3d"
        sweep = table23_closest_pairs(dataset, rng=seed, quick=quick, jobs=jobs)
        print(render_sweep(sweep, f"Table {exp[-1]} (closest pairs on same disk, {dataset})", metric="pairs"))
    elif exp == "table4":
        n = 60_000 if quick else 300_000
        rows = table4_animation(n_records=n, rng=seed)
        print(render_cluster_rows(rows, "Table 4 (animation queries, simulated SP-2)"))
    elif exp == "table5":
        n = 60_000 if quick else 300_000
        rows = table5_random(n_records=n, rng=seed)
        print(render_cluster_rows(rows, "Table 5 (random range queries, simulated SP-2)"))
    else:
        print(f"unknown experiment {args.id!r}", file=sys.stderr)
        return 2
    return 0


def _engine_params(args, **extra):
    """Build ClusterParams from the shared engine knobs, validating names.

    Unknown ``--scheduler`` / ``--replica-policy`` names and out-of-range
    admission settings raise ``ValueError`` at ``ParallelGridFile``
    construction; callers catch it and turn it into a clean CLI error.
    """
    from repro.parallel import ClusterParams

    return ClusterParams(
        scheduler=args.scheduler,
        replica_policy=args.replica_policy,
        max_inflight=args.max_inflight,
        deadline=args.deadline,
        retry_jitter=args.retry_jitter,
        des_queue=args.des_queue,
        **extra,
    )


def _print_perf(rep, *, show_shed: bool = False) -> None:
    print(f"elapsed time       : {rep.elapsed_time * 1e3:.2f} ms")
    print(f"mean latency       : {rep.mean_latency * 1e3:.3f} ms")
    print(f"p95 / p99 latency  : {rep.p95_latency * 1e3:.3f} / {rep.p99_latency * 1e3:.3f} ms")
    print(f"blocks fetched     : {rep.blocks_fetched} (read {rep.blocks_read}, "
          f"cache hit rate {rep.cache_hit_rate:.3f})")
    print(f"records returned   : {rep.records_returned}")
    print(f"comm time          : {rep.comm_time * 1e3:.2f} ms")
    if show_shed:
        print(f"throughput         : {rep.throughput:.1f} queries/s")
        print(f"shed queries       : {rep.shed_queries} "
              f"(fraction {rep.shed_fraction:.3f})")


def _deploy(args):
    ds = load(args.name, rng=args.seed)
    gf = build_gridfile(ds)
    method = make_method(args.method)
    assignment = method.assign(gf, args.disks, rng=args.seed)
    queries = square_queries(args.queries, args.ratio, ds.domain_lo, ds.domain_hi, rng=args.seed)
    return ds, gf, method, assignment, queries


def _cmd_cluster_sim(args) -> int:
    from repro.parallel import ParallelGridFile

    ds, gf, method, assignment, queries = _deploy(args)
    try:
        params = _engine_params(args, replication=args.scheme)
        pgf = ParallelGridFile(gf, assignment, args.disks, params)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rep = pgf.run_queries(queries)
    print(f"dataset            : {ds.name} ({gf.stats()})")
    print(f"method             : {method.name}, disks={args.disks}")
    print(f"engine             : scheduler={args.scheduler}, "
          f"replica-policy={args.replica_policy}, scheme={args.scheme}")
    print(f"queries            : {args.queries} (r={args.ratio}, closed loop)")
    _print_perf(rep)
    return 0


def _cmd_open_sim(args) -> int:
    from repro.parallel import ParallelGridFile

    if args.rate <= 0:
        print("--rate must be positive", file=sys.stderr)
        return 2
    ds, gf, method, assignment, queries = _deploy(args)
    try:
        params = _engine_params(args, replication=args.scheme)
        pgf = ParallelGridFile(gf, assignment, args.disks, params)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rep = pgf.run_open(queries, arrival_rate=args.rate, rng=args.seed)
    admission = "unbounded"
    if args.max_inflight is not None or args.deadline is not None:
        admission = f"max-inflight={args.max_inflight}, deadline={args.deadline}"
    print(f"dataset            : {ds.name} ({gf.stats()})")
    print(f"method             : {method.name}, disks={args.disks}")
    print(f"engine             : scheduler={args.scheduler}, "
          f"replica-policy={args.replica_policy}, admission={admission}")
    print(f"workload           : {args.queries} queries (r={args.ratio}), "
          f"Poisson arrivals at {args.rate:g}/s")
    _print_perf(rep, show_shed=True)
    return 0


def _cmd_fault_sim(args) -> int:
    from repro.parallel import ClusterParams, FaultPlan, ParallelGridFile

    ds = load(args.name, rng=args.seed)
    gf = build_gridfile(ds)
    method = make_method(args.method)
    assignment = method.assign(gf, args.disks, rng=args.seed)
    queries = square_queries(args.queries, args.ratio, ds.domain_lo, ds.domain_hi, rng=args.seed)

    if args.crash_node >= args.disks:
        print(f"--crash-node must be < --disks ({args.disks})", file=sys.stderr)
        return 2
    if args.crash_time < 0:
        print("--crash-time must be non-negative", file=sys.stderr)
        return 2
    if args.recover_time is not None and args.recover_time <= args.crash_time:
        print("--recover-time must be after --crash-time", file=sys.stderr)
        return 2
    plan = FaultPlan().node_crash(args.crash_time, node=args.crash_node)
    if args.recover_time is not None:
        plan = plan.node_recover(args.recover_time, node=args.crash_node)

    params = ClusterParams(replication=args.scheme)
    healthy = ParallelGridFile(gf, assignment, args.disks, params).run_queries(queries)
    rep = ParallelGridFile(gf, assignment, args.disks, params).run_queries(queries, faults=plan)

    recover = f", recover at t={args.recover_time}" if args.recover_time is not None else ""
    print(f"dataset            : {ds.name} ({gf.stats()})")
    print(f"method             : {method.name}, disks={args.disks}, scheme={args.scheme}")
    print(f"fault plan         : crash node {args.crash_node} at t={args.crash_time}{recover}")
    print(f"queries            : {args.queries} (r={args.ratio})")
    print(f"elapsed time       : {rep.elapsed_time * 1e3:.2f} ms (healthy {healthy.elapsed_time * 1e3:.2f} ms)")
    print(f"mean latency       : {rep.mean_latency * 1e3:.3f} ms (healthy {healthy.mean_latency * 1e3:.3f} ms)")
    print(f"timeouts / retries : {rep.timeouts} / {rep.retries}")
    print(f"failovers          : {rep.failovers}")
    print(f"messages lost      : {rep.messages_lost}")
    print(f"aborted queries    : {rep.aborted_queries}")
    print(f"availability       : {rep.availability:.4f}")
    return 0


def _cmd_online_sim(args) -> int:
    from repro.core import make_placement
    from repro.parallel import DegradationMonitor, OnlineCluster, make_store
    from repro.sim import mixed_workload
    from repro.storage import StorageError

    if not 0.0 <= args.write_ratio <= 1.0:
        print("--write-ratio must be in [0, 1]", file=sys.stderr)
        return 2
    if args.store != "memory" and args.store_path is None:
        print(f"--store {args.store} requires --store-path", file=sys.stderr)
        return 2
    ds = load(args.name, rng=args.seed)
    gf = build_gridfile(ds)
    method = make_method(args.method)
    assignment = method.assign(gf, args.disks, rng=args.seed)
    try:
        store = make_store(
            gf, backend=args.store, path=args.store_path, durability=args.wal_sync
        )
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ops = mixed_workload(
        args.ops,
        args.write_ratio,
        ds.domain_lo,
        ds.domain_hi,
        ratio=args.ratio,
        rng=args.seed,
    )
    monitor = None
    if not args.no_reorg:
        monitor = DegradationMonitor(
            threshold=args.reorg_threshold, budget=args.reorg_budget
        )
    policy = make_placement(args.placement)
    before = gf.n_buckets
    try:
        cluster = OnlineCluster(
            store, assignment, args.disks, params=_engine_params(args),
            placement=policy, monitor=monitor, seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        rep = cluster.run(ops)
    finally:
        if args.store != "memory":
            store.close()
    reorg = "disabled" if monitor is None else (
        f"threshold={monitor.threshold}, budget={monitor.budget}"
    )
    storage = "memory (no durability)" if args.store == "memory" else (
        f"{args.store} at {args.store_path} (wal sync: {args.wal_sync})"
    )
    print(f"dataset            : {ds.name} ({gf.stats()})")
    print(f"method / placement : {method.name} / {policy.name}, disks={args.disks}, "
          f"scheduler={args.scheduler}")
    print(f"storage            : {storage}")
    print(f"workload           : {args.ops} ops, write ratio {args.write_ratio}, r={args.ratio}")
    print(f"reorganization     : {reorg}")
    print(f"writes             : {rep.n_inserts} inserts, {rep.n_deletes} deletes "
          f"({rep.n_noop_deletes} no-op)")
    print(f"structure churn    : {rep.n_splits} splits, {rep.n_merges} merges, "
          f"{rep.n_refines} refines ({before} -> {rep.final_buckets} buckets)")
    print(f"maintenance        : {rep.policy_moves} policy moves, {rep.reorg_moves} "
          f"reorg moves in {rep.n_reorgs} reorgs (movement fraction "
          f"{rep.movement_fraction:.3f})")
    print(f"cache invalidations: {rep.cache_invalidations}")
    print(f"mean R(q) ratio    : {rep.mean_rq_ratio:.3f} (1.0 = balanced optimum)")
    print(f"mean query latency : {rep.perf.mean_latency * 1e3:.3f} ms")
    print(f"mean write latency : {rep.mean_write_latency * 1e3:.3f} ms")
    print(f"elapsed time       : {rep.elapsed_time * 1e3:.2f} ms")
    return 0


def _cmd_autoscale_sim(args) -> int:
    from repro.parallel import AutoscaleCluster, AutoscaleParams, ScalePlan
    from repro.sim import flash_crowd_queries

    ds = load(args.name, rng=args.seed)
    gf = build_gridfile(ds)
    method = make_method(args.method)
    assignment = method.assign(gf, args.disks, rng=args.seed)
    queries = flash_crowd_queries(
        args.queries, args.ratio, ds.domain_lo, ds.domain_hi,
        start=args.crowd_start, duration=args.crowd_duration,
        intensity=args.crowd_intensity, width=args.crowd_width,
        rng=args.seed,
    )
    plan = ScalePlan()
    for t in args.join or []:
        plan.join(t)
    for t in args.leave or []:
        plan.leave(t)
    try:
        autoscale = AutoscaleParams(
            policy=args.policy,
            budget=args.budget,
            alpha=args.alpha,
            interval=args.interval,
            add_heat=args.add_heat,
            evict_heat=args.evict_heat,
            min_dwell=args.min_dwell,
        )
        params = _engine_params(
            args, autoscale=autoscale,
            cache_blocks=args.cache_blocks, pipeline_depth=args.pipeline_depth,
        )
        cluster = AutoscaleCluster(
            gf, assignment, args.disks, params,
            plan=plan if plan.sorted_events() else None,
            pool_disks=args.pool_disks,
            seed=args.seed,
        )
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rep = cluster.run(queries)
    print(f"dataset            : {ds.name} ({gf.stats()})")
    print(f"method             : {method.name}, disks={args.disks} "
          f"(pool {rep.pool_disks})")
    print(f"policy             : {args.policy}, budget={args.budget}, "
          f"alpha={args.alpha}, interval={args.interval}")
    print(f"workload           : {args.queries} queries (r={args.ratio}), "
          f"flash crowd [{args.crowd_start}, "
          f"{args.crowd_start + args.crowd_duration}) "
          f"intensity {args.crowd_intensity}")
    print(f"membership         : {rep.n_disks_start} -> {rep.n_disks_end} disks "
          f"({rep.joins} joins, {rep.leaves} leaves)")
    print(f"replication        : {rep.replicas_created} created, "
          f"{rep.replicas_evicted} evicted, peak {rep.peak_replicas}, "
          f"final {rep.final_replicas}")
    print(f"movement           : {rep.moves} bucket moves, {rep.promotions} "
          f"promotions, {rep.blocks_copied} blocks copied")
    print(f"control steps      : {rep.control_steps}")
    print(f"availability       : {rep.perf.availability:.4f}")
    _print_perf(rep.perf)
    return 0


def _cmd_fsck(args) -> int:
    from pathlib import Path

    from repro.storage import DATA_FILE, StorageEngine, StorageError

    path = Path(args.path)
    if not (path / DATA_FILE).exists():
        print(f"error: no store at {path} (missing {DATA_FILE})", file=sys.stderr)
        return 2
    try:
        eng = StorageEngine(path, backend=args.backend, page_size=args.page_size)
    except (StorageError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = eng.fsck(repair=args.repair)
    finally:
        eng.close()
    print(f"store          : {path} (backend={args.backend}, page_size={args.page_size})")
    print(f"pages checked  : {report.pages_checked}")
    print(f"pages repaired : {report.pages_repaired}")
    for problem in report.problems:
        print(f"  - {problem}")
    if args.dump and report.dumps:
        out = Path(args.dump)
        out.mkdir(parents=True, exist_ok=True)
        for pid, dump in sorted(report.dumps.items()):
            (out / f"page-{pid}.hexdump.txt").write_text(dump + "\n")
        print(f"hexdumps       : {len(report.dumps)} corrupt page(s) -> {out}")
    print(f"status         : {'clean' if report.ok else 'CORRUPT'}")
    return 0 if report.ok else 1


def _cmd_trace(args) -> int:
    from repro.obs import diff_summaries, read_trace, render_summary, summarize

    if args.trace_command == "summarize":
        print(render_summary(summarize(read_trace(args.file))))
        return 0
    if args.trace_command == "diff":
        a = summarize(read_trace(args.a))
        b = summarize(read_trace(args.b))
        print(diff_summaries(a, b))
        return 0

    # record
    from repro.obs import PROFILER, Tracer
    from repro.parallel import ClusterParams, FaultPlan, ParallelGridFile

    plan = None
    if args.crash_node is not None:
        if not 0 <= args.crash_node < args.disks:
            print(f"--crash-node must be in [0, {args.disks})", file=sys.stderr)
            return 2
        plan = FaultPlan().node_crash(args.crash_time, node=args.crash_node)
        if args.recover_time is not None:
            if args.recover_time <= args.crash_time:
                print("--recover-time must be after --crash-time", file=sys.stderr)
                return 2
            plan.node_recover(args.recover_time, node=args.crash_node)
    if args.slow_node is not None:
        if not 0 <= args.slow_node < args.disks:
            print(f"--slow-node must be in [0, {args.disks})", file=sys.stderr)
            return 2
        plan = plan if plan is not None else FaultPlan()
        plan.disk_slowdown(args.slow_time, node=args.slow_node, factor=args.slow_factor)

    tracer = Tracer(path=args.out)
    # Recording implies profiling: capture phase timings for this run only.
    was_enabled = PROFILER.enabled
    PROFILER.enabled = True
    PROFILER.reset()
    try:
        ds = load(args.name, rng=args.seed)
        gf = build_gridfile(ds)
        method = make_method(args.method)
        with PROFILER.phase(f"assign.{method.name}"):
            assignment = method.assign(gf, args.disks, rng=args.seed)
        queries = square_queries(
            args.queries, args.ratio, ds.domain_lo, ds.domain_hi, rng=args.seed
        )
        params = ClusterParams(replication=args.scheme) if args.scheme else ClusterParams()
        rep = ParallelGridFile(gf, assignment, args.disks, params).run_queries(
            queries, faults=plan, tracer=tracer
        )
    finally:
        PROFILER.enabled = was_enabled
    tracer.phases(PROFILER.snapshot())
    tracer.close()
    print(
        f"wrote {args.out} ({len(tracer.records)} records, "
        f"elapsed {rep.elapsed_time * 1e3:.2f} ms sim)"
    )
    return 0


def _cmd_bounds(args) -> int:
    from repro._util.tables import format_table
    from repro.theory import tightness_report

    def parse_shape(text: str) -> tuple:
        try:
            shape = tuple(int(p) for p in text.lower().split("x"))
        except ValueError:
            raise ValueError(f"bad shape {text!r}; use e.g. 16x16 or 8x8x8")
        if not shape or any(n < 1 for n in shape):
            raise ValueError(f"bad shape {text!r}; sides must be >= 1")
        return shape

    try:
        shapes = [parse_shape(s) for s in (args.shape or ["16x16"])]
        specs = args.methods.split(",") if args.methods else None
        rows = tightness_report(
            specs=specs,
            shapes=shapes,
            disks=args.disks or [16],
            rng=args.seed,
            lower_bound=args.lower,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    table = [
        [
            r.spec,
            "x".join(str(n) for n in r.shape),
            r.n_disks,
            r.error,
            "-" if r.bound is None else f"{r.bound:g}",
            r.bound_family or "-",
            f"{r.lower:.2f}",
            "yes" if r.within_bound else "VIOLATED",
        ]
        for r in rows
    ]
    print(format_table(
        ["method", "grid", "disks", "error", "bound", "family", "lower", "within"],
        table,
        title=f"Additive-error tightness (all box queries, lower bound: {args.lower})",
    ))
    if not all(r.within_bound for r in rows):
        print("error: a scheme exceeded its theory bound", file=sys.stderr)
        return 1
    return 0


def _cmd_sql(args) -> int:
    from repro.sql import SqlEngine, SqlError

    if args.store != "memory" and args.store_path is None:
        print(f"--store {args.store} requires --store-path", file=sys.stderr)
        return 2
    try:
        engine = SqlEngine(
            n_disks=args.disks,
            params=_engine_params(args),
            placement=args.placement,
            method=args.method,
            store_backend=args.store,
            store_path=args.store_path,
            wal_sync=args.wal_sync,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def run(text: str) -> int:
        try:
            results = engine.execute_script(text)
        except SqlError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for res in results:
            if res.kind == "select":
                for row in res.rows:
                    print("\t".join(repr(v) for v in row))
                print(f"-- {res.rowcount} row(s)")
                if args.verbose and res.plan is not None:
                    print(res.plan.explain(), file=sys.stderr)
            else:
                print(f"-- {res.text}" if res.text else f"-- {res.kind} ok")
        return 0

    if args.execute is not None:
        return run(args.execute)
    if args.file is not None:
        try:
            text = open(args.file, encoding="utf-8").read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return run(text)

    # REPL: accumulate lines until a statement-terminating semicolon.
    interactive = sys.stdin.isatty()
    if interactive:
        print("repro sql — end statements with ';', Ctrl-D to exit")
    buffer = ""
    while True:
        if interactive:
            sys.stderr.write("sql> " if not buffer else "...> ")
            sys.stderr.flush()
        line = sys.stdin.readline()
        if not line:
            break
        buffer += line
        if ";" in line:
            run(buffer)  # errors are reported and the session continues
            buffer = ""
    if buffer.strip():
        run(buffer)
    return 0


def _add_engine_flags(sp) -> None:
    """Attach the request-pipeline engine knobs to a subparser.

    Name validation happens in the engine registries (they raise
    ``ValueError`` listing the valid choices), so new disciplines and
    policies show up here without touching the CLI.
    """
    sp.add_argument("--scheduler", default="fifo",
                    help="disk queue discipline (fifo | sjf | fair)")
    sp.add_argument("--replica-policy", default="primary-only",
                    help="replica selection (primary-only | least-loaded-alive"
                    " | fastest-estimated); balancing policies need replication")
    sp.add_argument("--max-inflight", type=int, default=None,
                    help="bound concurrently admitted queries (open runs)")
    sp.add_argument("--deadline", type=float, default=None,
                    help="shed queries that wait longer than this (s, open runs)")
    sp.add_argument("--retry-jitter", type=float, default=0.0,
                    help="full-jitter fraction on retry backoff (0 = deterministic"
                    " legacy delays, 1 = full jitter)")
    sp.add_argument("--des-queue", default=None,
                    help="DES pending-event queue (heap | calendar); results are"
                    " identical, the calendar queue drops the heap's log factor"
                    " on million-event runs")


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    p = argparse.ArgumentParser(
        prog="repro-decluster",
        description="Declustering algorithms for parallel grid files (IPPS'96 reproduction)",
    )
    p.add_argument("--seed", type=int, default=1996, help="base RNG seed")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list datasets, methods and experiments")

    d = sub.add_parser("dataset", help="build a dataset's grid file and print stats")
    d.add_argument("name", choices=sorted(DATASETS))

    dec = sub.add_parser("decluster", help="decluster a dataset and evaluate")
    dec.add_argument("name", choices=sorted(DATASETS))
    dec.add_argument("--method", default="minimax", help="method spec (see `list`)")
    dec.add_argument("--disks", type=int, default=16)
    dec.add_argument("--ratio", type=float, default=0.05, help="query volume ratio r")
    dec.add_argument("--queries", type=int, default=1000)
    dec.add_argument("--out", default=None, help="export per-disk files to this directory")

    e = sub.add_parser("experiment", help="regenerate a paper figure/table")
    e.add_argument("id", help="fig2|fig3|fig4|fig6|fig7|table1..table5")
    e.add_argument("--quick", action="store_true", help="reduced sweep for a fast run")
    e.add_argument("--plot", action="store_true", help="also render ASCII charts")
    e.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep cells (0 = all cores); results are "
        "bit-for-bit identical to --jobs 1",
    )

    cs = sub.add_parser("cluster-sim", help="closed-loop cluster run with engine knobs")
    cs.add_argument("name", choices=sorted(DATASETS))
    cs.add_argument("--method", default="minimax", help="method spec (see `list`)")
    cs.add_argument("--disks", type=int, default=16)
    cs.add_argument("--scheme", default=None, choices=["chained", "mirrored"],
                    help="optional replication scheme (required by balancing policies)")
    cs.add_argument("--ratio", type=float, default=0.05, help="query volume ratio r")
    cs.add_argument("--queries", type=int, default=200)
    _add_engine_flags(cs)

    os_ = sub.add_parser("open-sim", help="open-system run: Poisson arrivals, admission control")
    os_.add_argument("name", choices=sorted(DATASETS))
    os_.add_argument("--method", default="minimax", help="method spec (see `list`)")
    os_.add_argument("--disks", type=int, default=16)
    os_.add_argument("--scheme", default=None, choices=["chained", "mirrored"],
                     help="optional replication scheme (required by balancing policies)")
    os_.add_argument("--rate", type=float, default=400.0, help="arrival rate (queries/s)")
    os_.add_argument("--ratio", type=float, default=0.05, help="query volume ratio r")
    os_.add_argument("--queries", type=int, default=200)
    _add_engine_flags(os_)

    f = sub.add_parser("fault-sim", help="simulate a node crash mid-run and report failover")
    f.add_argument("name", choices=sorted(DATASETS))
    f.add_argument("--method", default="minimax", help="method spec (see `list`)")
    f.add_argument("--disks", type=int, default=16)
    f.add_argument("--scheme", default="chained", choices=["chained", "mirrored"])
    f.add_argument("--crash-node", type=int, default=3, help="node to crash")
    f.add_argument("--crash-time", type=float, default=0.05, help="crash time (s)")
    f.add_argument("--recover-time", type=float, default=None, help="optional recovery time (s)")
    f.add_argument("--ratio", type=float, default=0.05, help="query volume ratio r")
    f.add_argument("--queries", type=int, default=200)

    o = sub.add_parser(
        "online-sim",
        help="drive a mixed read/write workload against a live grid file",
    )
    o.add_argument("name", choices=sorted(DATASETS))
    o.add_argument("--method", default="minimax", help="initial assignment method")
    o.add_argument("--disks", type=int, default=16)
    o.add_argument("--ops", type=int, default=500, help="total operations")
    o.add_argument("--write-ratio", type=float, default=0.3,
                   help="fraction of ops that are writes (0..1)")
    o.add_argument("--placement", default="rr-least-loaded",
                   help="online placement policy (rr-least-loaded | proximity-steal"
                   " | recompute-threshold)")
    o.add_argument("--ratio", type=float, default=0.05, help="query volume ratio r")
    o.add_argument("--no-reorg", action="store_true",
                   help="disable the degradation monitor")
    o.add_argument("--reorg-threshold", type=float, default=1.5,
                   help="windowed R(q) ratio that triggers reorganization")
    o.add_argument("--reorg-budget", type=float, default=0.2,
                   help="movement budget per reorganization (fraction of buckets)")
    o.add_argument("--store", default="memory", choices=["memory", "file", "mmap"],
                   help="storage backend for the live grid file (file/mmap persist"
                   " every committed operation through the WAL)")
    o.add_argument("--store-path", default=None,
                   help="directory for the durable store (required unless memory)")
    o.add_argument("--wal-sync", default="commit", choices=["commit", "checkpoint"],
                   help="fsync the WAL on every commit, or only at checkpoints")
    _add_engine_flags(o)

    a = sub.add_parser(
        "autoscale-sim",
        help="flash-crowd run with popularity-driven replication and "
        "elastic membership",
    )
    a.add_argument("name", choices=sorted(DATASETS))
    a.add_argument("--method", default="minimax", help="method spec (see `list`)")
    a.add_argument("--disks", type=int, default=8, help="active disks at start")
    a.add_argument("--pool-disks", type=int, default=None,
                   help="provisioned pool (>= --disks; default: sized to the plan)")
    a.add_argument("--policy", default="heat-replicate",
                   help="autoscale policy (null | static | heat-replicate)")
    a.add_argument("--budget", type=int, default=8,
                   help="replica storage budget (buckets)")
    a.add_argument("--alpha", type=float, default=0.6,
                   help="EWMA smoothing for the heat tracker (0, 1]")
    a.add_argument("--interval", type=int, default=4,
                   help="control-loop period (completed queries per tick)")
    a.add_argument("--add-heat", type=float, default=2.0,
                   help="replicate buckets whose score exceeds this watermark")
    a.add_argument("--evict-heat", type=float, default=0.25,
                   help="evict replicas whose score falls below this watermark")
    a.add_argument("--min-dwell", type=int, default=4,
                   help="ticks a replica survives after creation (anti-thrash)")
    a.add_argument("--join", type=float, action="append", metavar="T",
                   help="activate one pool disk at time T (repeatable)")
    a.add_argument("--leave", type=float, action="append", metavar="T",
                   help="drain one active disk at time T (repeatable)")
    a.add_argument("--ratio", type=float, default=0.01, help="query volume ratio r")
    a.add_argument("--queries", type=int, default=500)
    a.add_argument("--crowd-start", type=float, default=0.2,
                   help="crowd onset (fraction of the query stream)")
    a.add_argument("--crowd-duration", type=float, default=0.6,
                   help="crowd length (fraction of the query stream)")
    a.add_argument("--crowd-intensity", type=float, default=0.95,
                   help="fraction of crowd-window queries aimed at the hot spot")
    a.add_argument("--crowd-width", type=float, default=0.01,
                   help="hot-spot spread (fraction of the domain extent)")
    a.add_argument("--cache-blocks", type=int, default=0,
                   help="per-node LRU cache (blocks); 0 keeps the crowd disk-bound")
    a.add_argument("--pipeline-depth", type=int, default=8,
                   help="closed-loop concurrency (queries in flight)")
    _add_engine_flags(a)

    fs = sub.add_parser(
        "fsck", help="verify (and optionally repair) a durable store's pages"
    )
    fs.add_argument("path", help="store directory (holds pages.dat / wal.log)")
    fs.add_argument("--repair", action="store_true",
                    help="rewrite corrupt pages from their committed WAL images")
    fs.add_argument("--backend", default="file", choices=["file", "mmap"],
                    help="block-store backend the store was written with")
    fs.add_argument("--page-size", type=int, default=4096,
                    help="page size the store was written with (bytes)")
    fs.add_argument("--dump", default=None,
                    help="directory to write hexdumps of corrupt pages into")

    t = sub.add_parser("trace", help="record, summarize or diff cluster run traces")
    tsub = t.add_subparsers(dest="trace_command", required=True)
    trec = tsub.add_parser(
        "record", help="run a cluster workload with tracing on, write a JSONL trace"
    )
    trec.add_argument("name", choices=sorted(DATASETS))
    trec.add_argument("out", help="output trace path (JSONL)")
    trec.add_argument("--method", default="minimax", help="method spec (see `list`)")
    trec.add_argument("--disks", type=int, default=16)
    trec.add_argument("--scheme", default=None, choices=["chained", "mirrored"],
                      help="optional replication scheme (enables failover)")
    trec.add_argument("--ratio", type=float, default=0.05, help="query volume ratio r")
    trec.add_argument("--queries", type=int, default=100)
    trec.add_argument("--crash-node", type=int, default=None, help="optional node to crash")
    trec.add_argument("--crash-time", type=float, default=0.05, help="crash time (s)")
    trec.add_argument("--recover-time", type=float, default=None, help="optional recovery time (s)")
    trec.add_argument("--slow-node", type=int, default=None,
                      help="optional node whose disk 0 is slowed")
    trec.add_argument("--slow-factor", type=float, default=4.0, help="slowdown multiplier")
    trec.add_argument("--slow-time", type=float, default=0.0, help="slowdown start time (s)")
    tsum = tsub.add_parser("summarize", help="summarize a recorded trace")
    tsum.add_argument("file", help="trace path (JSONL)")
    tdiff = tsub.add_parser("diff", help="diff two recorded traces")
    tdiff.add_argument("a", help="baseline trace path")
    tdiff.add_argument("b", help="comparison trace path")

    q = sub.add_parser(
        "sql",
        help="SQL front end: REPL, one-shot (-e) or script (-f) over live "
        "declustered tables",
    )
    q.add_argument("-e", "--execute", default=None, metavar="SQL",
                   help="execute one SQL string and exit")
    q.add_argument("-f", "--file", default=None, metavar="PATH",
                   help="execute a ;-separated SQL script file and exit")
    q.add_argument("--disks", type=int, default=4, help="cluster size (disks)")
    q.add_argument("--placement", default="rr-least-loaded",
                   help="online placement policy for buckets born from splits")
    q.add_argument("--method", default=None,
                   help="re-decluster tables with this method spec after every"
                   " write batch (default: keep the placement policy's"
                   " incremental assignment)")
    q.add_argument("--store", default="memory", choices=["memory", "file", "mmap"],
                   help="per-table storage backend")
    q.add_argument("--store-path", default=None,
                   help="directory for file/mmap table stores")
    q.add_argument("--wal-sync", default="commit",
                   choices=["commit", "checkpoint", "off"],
                   help="WAL durability mode for file/mmap stores")
    q.add_argument("-v", "--verbose", action="store_true",
                   help="print each SELECT's plan (EXPLAIN) to stderr")
    _add_engine_flags(q)

    b = sub.add_parser(
        "bounds",
        help="measure schemes' worst-case additive error against theory bounds",
    )
    b.add_argument("--methods", default=None,
                   help="comma-separated method specs (default: every"
                   " registered scheme)")
    b.add_argument("--shape", action="append", metavar="NxN",
                   help="Cartesian grid shape, e.g. 16x16 or 8x8x8"
                   " (repeatable; default 16x16)")
    b.add_argument("--disks", type=int, action="append", metavar="M",
                   help="disk count (repeatable; default 16)")
    b.add_argument("--lower", default="dhw",
                   help="lower-bound family to report against (trivial | dhw)")

    r = sub.add_parser("report", help="run every experiment into a markdown report")
    r.add_argument("output", help="output .md path")
    r.add_argument("--full", action="store_true", help="full (paper-scale) profile")
    r.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep cells (0 = all cores); results are "
        "bit-for-bit identical to --jobs 1",
    )

    return p


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=3, suppress=True)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "dataset":
        return _cmd_dataset(args)
    if args.command == "decluster":
        return _cmd_decluster(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "cluster-sim":
        return _cmd_cluster_sim(args)
    if args.command == "open-sim":
        return _cmd_open_sim(args)
    if args.command == "fault-sim":
        return _cmd_fault_sim(args)
    if args.command == "online-sim":
        return _cmd_online_sim(args)
    if args.command == "autoscale-sim":
        return _cmd_autoscale_sim(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "fsck":
        return _cmd_fsck(args)
    if args.command == "sql":
        return _cmd_sql(args)
    if args.command == "bounds":
        return _cmd_bounds(args)
    if args.command == "report":
        from repro.experiments.runall import write_full_report

        path = write_full_report(args.output, rng=args.seed, quick=not args.full, jobs=args.jobs)
        print(f"wrote {path}")
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
