"""Pluggable bound families: what theory promises each scheme.

Generalizes the paper-specific closed forms of
:mod:`repro.analysis.theorem1` (DM) and :mod:`repro.analysis.theorem2`
(FX) into two registries keyed by family name, mirroring the method
registry convention:

* :data:`LOWER_BOUNDS` — scheme-independent floors: no declustering of a
  d-dimensional grid onto M disks can have worst-case additive error below
  this (``"dhw"`` is the Doerr–Hebbinghaus–Werth
  ``Omega((log M)^((d-1)/2))`` bound, stated here with a deliberately
  conservative constant so it never overclaims at small M).
* :data:`ADDITIVE_BOUNDS` — per-family ceilings on a scheme's worst-case
  additive error, referenced from ``SchemeEntry.bound_family``:

  - ``"dm"``: **exact** — Theorem 1's residue-counting argument
    generalizes to any box via ``dm_response_exact_box`` (position
    independent), maximized over all query shapes of the grid;
  - ``"dhw"``: the latin-square discrepancy bound
    ``(log2 M)^(d-1) + 1`` for :class:`repro.core.latinsquare.LatinSquare`;
  - ``"curve_runs"``: for round-robin-along-a-curve schemes,
    ``err(Q) <= runs(Q) - 1`` (a contiguous run deals perfectly; each
    extra run costs at most one), instantiated with the exact worst-case
    run count of the scheme's own curve on the grid;
  - ``"fx"``: no worst-case additive form — Theorem 2 bounds FX's
    *expected* response on power-of-two squares, so the family resolves
    to None and reports show an em dash (the expected-response analysis
    stays in :mod:`repro.analysis.theorem2`).

Every bound here is falsified or confirmed by exact measurement in
:mod:`repro.theory.harness`; nothing is trusted on paper authority alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from math import ceil, log2, prod

from repro.theory.additive import curve_rank_grid, max_box_runs

__all__ = [
    "LowerBound",
    "AdditiveBound",
    "LOWER_BOUNDS",
    "ADDITIVE_BOUNDS",
    "make_lower_bound",
    "make_additive_bound",
]


@dataclass(frozen=True)
class LowerBound:
    """A scheme-independent floor on worst-case additive error."""

    name: str
    description: str
    fn: "object"  # (n_disks, dims) -> float

    def __call__(self, n_disks: int, dims: int) -> float:
        return float(self.fn(n_disks, dims))


@dataclass(frozen=True)
class AdditiveBound:
    """A per-family ceiling on a scheme's worst-case additive error.

    ``fn(shape, n_disks, method)`` returns the bound for that grid and
    disk count (``method`` is the built scheme, for families like
    ``"curve_runs"`` that interrogate the instance), or None when the
    family has no worst-case form.
    """

    name: str
    description: str
    exact: bool  # True when the bound is attained, not just an upper bound
    fn: "object"  # (shape, n_disks, method) -> float | None

    def __call__(self, shape, n_disks: int, method=None) -> "float | None":
        out = self.fn(shape, n_disks, method)
        return None if out is None else float(out)


def _dhw_lower(n_disks: int, dims: int) -> float:
    if dims < 2 or n_disks < 2:
        return 0.0
    return log2(n_disks) ** ((dims - 1) / 2) / 8.0


LOWER_BOUNDS: "dict[str, LowerBound]" = {
    "trivial": LowerBound(
        "trivial", "zero: additive error is nonnegative by definition", lambda m, d: 0.0
    ),
    "dhw": LowerBound(
        "dhw",
        "Doerr-Hebbinghaus-Werth Omega((log M)^((d-1)/2)) floor "
        "(conservative constant 1/8)",
        _dhw_lower,
    ),
}


def _dm_additive(shape, n_disks, method):
    from repro.analysis.theorem1 import dm_response_exact_box

    worst = 0
    for qshape in product(*(range(1, int(n) + 1) for n in shape)):
        err = dm_response_exact_box(qshape, n_disks) - ceil(prod(qshape) / n_disks)
        worst = max(worst, err)
    return worst


def _dhw_additive(shape, n_disks, method):
    if n_disks < 2:
        return 0.0
    return log2(n_disks) ** (len(tuple(shape)) - 1) + 1.0


def _curve_runs_additive(shape, n_disks, method):
    if method is None:
        return None
    ranks = curve_rank_grid(method, shape)
    if ranks is None:
        return None
    return max_box_runs(ranks) - 1


ADDITIVE_BOUNDS: "dict[str, AdditiveBound]" = {
    "dm": AdditiveBound(
        "dm",
        "exact worst box-query error from Theorem 1's residue counts",
        exact=True,
        fn=_dm_additive,
    ),
    "dhw": AdditiveBound(
        "dhw",
        "latin-square discrepancy bound (log2 M)^(d-1) + 1",
        exact=False,
        fn=_dhw_additive,
    ),
    "curve_runs": AdditiveBound(
        "curve_runs",
        "round robin over r curve runs errs by at most r - 1 "
        "(instantiated with the curve's exact worst-case run count)",
        exact=False,
        fn=_curve_runs_additive,
    ),
    "fx": AdditiveBound(
        "fx",
        "no worst-case form; Theorem 2 bounds FX's expected response only",
        exact=False,
        fn=lambda shape, m, method: None,
    ),
}


def make_lower_bound(name: str) -> LowerBound:
    """Look up a lower-bound family (unknown names list every valid one)."""
    if name not in LOWER_BOUNDS:
        raise ValueError(
            f"unknown lower bound {name!r}; choose from {sorted(LOWER_BOUNDS)}"
        )
    return LOWER_BOUNDS[name]


def make_additive_bound(name: str) -> AdditiveBound:
    """Look up an additive-bound family (unknown names list every valid one)."""
    if name not in ADDITIVE_BOUNDS:
        raise ValueError(
            f"unknown additive bound {name!r}; choose from {sorted(ADDITIVE_BOUNDS)}"
        )
    return ADDITIVE_BOUNDS[name]
