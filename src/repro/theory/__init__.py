"""Theory layer: additive-error bounds, measured exactly.

The paper states per-scheme response-time theorems (Theorem 1 for DM,
Theorem 2 for FX); later declustering theory (Doerr–Hebbinghaus–Werth,
the Onion-curve analysis) instead speaks one common language — worst-case
**additive error** over box queries, relative to the ideal
``ceil(|Q|/M)``.  This package generalizes the repo's theorem modules
into that language:

* :mod:`repro.theory.additive` — exact worst-case additive error of any
  scheme over *all* box queries of a grid (prefix-sum sweep, not
  sampling), plus the exact worst-case curve run count;
* :mod:`repro.theory.bounds` — pluggable registries of lower bounds
  (floors no scheme can beat) and per-family additive bounds (ceilings
  schemes promise), keyed by ``SchemeEntry.bound_family``;
* :mod:`repro.theory.harness` — the tightness report that pins every
  registered scheme between its ceiling and the floor, used by the
  ``repro bounds`` CLI, the test suite and the ``bounds`` CI gate.
"""

from repro.theory.additive import (
    AdditiveErrorResult,
    curve_rank_grid,
    max_box_runs,
    scheme_disk_grid,
    worst_additive_error,
)
from repro.theory.bounds import (
    ADDITIVE_BOUNDS,
    LOWER_BOUNDS,
    AdditiveBound,
    LowerBound,
    make_additive_bound,
    make_lower_bound,
)
from repro.theory.harness import TightnessRow, tightness_report

__all__ = [
    "AdditiveErrorResult",
    "scheme_disk_grid",
    "worst_additive_error",
    "curve_rank_grid",
    "max_box_runs",
    "LowerBound",
    "AdditiveBound",
    "LOWER_BOUNDS",
    "ADDITIVE_BOUNDS",
    "make_lower_bound",
    "make_additive_bound",
    "TightnessRow",
    "tightness_report",
]
