"""Bounds-tightness harness: measured worst case vs promised bounds.

For each (scheme, grid shape, disk count) triple the harness builds the
scheme on a Cartesian product file, measures the **exact** worst-case
additive error over every box query (:mod:`repro.theory.additive`), and
places it between the scheme's theory ceiling (its registry
``bound_family``) and the best known scheme-independent floor
(:mod:`repro.theory.bounds`).  The result answers two questions the
paper-era tables cannot:

* *soundness* — does any scheme violate its claimed bound?  (a row with
  ``within_bound == False`` is a refutation, and the test suite and the
  ``bounds`` CI gate both fail on it);
* *tightness* — how much daylight is there between what a scheme achieves
  and what the theory promises (``slack``), and how close is the best
  scheme to the floor below which no scheme can go?

Exposed on the command line as ``repro bounds`` and benchmarked (with an
exactly-gated baseline) in ``benchmarks/bench_ext_bounds.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.registry import REGISTRY, MethodSpec, make_method
from repro.theory.additive import scheme_disk_grid, worst_additive_error
from repro.theory.bounds import make_additive_bound, make_lower_bound

__all__ = ["TightnessRow", "tightness_report"]


@dataclass(frozen=True)
class TightnessRow:
    """One (scheme, grid, disks) measurement placed between its bounds."""

    spec: str
    shape: "tuple[int, ...]"
    n_disks: int
    error: int
    worst_query: "tuple[tuple[int, ...], tuple[int, ...]]"
    n_queries: int
    bound_family: "str | None"
    bound: "float | None"
    lower: float

    @property
    def within_bound(self) -> bool:
        """True unless the measurement refutes the scheme's ceiling."""
        return self.bound is None or self.error <= self.bound

    @property
    def slack(self) -> "float | None":
        """Ceiling minus measurement (how loose the theory is); None if
        the scheme has no worst-case bound."""
        return None if self.bound is None else self.bound - self.error


def tightness_report(
    specs=None,
    shapes=((16, 16),),
    disks=(16,),
    rng=1996,
    lower_bound: str = "dhw",
) -> "list[TightnessRow]":
    """Measure every requested scheme against its bounds.

    Parameters
    ----------
    specs:
        Method spec strings (default: one default spec per registered
        scheme — the whole registry).
    shapes:
        Grid shapes to evaluate; every box query of each grid is
        enumerated exactly, so keep cell counts moderate (<= ~10^4).
    disks:
        Disk counts M.
    rng:
        Seed for randomized schemes, so reports are reproducible.
    lower_bound:
        Name of the scheme-independent floor family to report against.

    Returns
    -------
    list[TightnessRow]
        One row per (spec, shape, M), in the given order.
    """
    if specs is None:
        specs = [entry.default_spec() for entry in REGISTRY.values()]
    floor = make_lower_bound(lower_bound)
    rows: "list[TightnessRow]" = []
    for spec in specs:
        parsed = MethodSpec.parse(spec) if isinstance(spec, str) else spec
        entry = REGISTRY.get(parsed.name)
        family = entry.bound_family if entry is not None else None
        for shape in shapes:
            shape = tuple(int(n) for n in shape)
            for n_disks in disks:
                method = make_method(parsed)
                grid = scheme_disk_grid(method, shape, n_disks, rng=rng)
                res = worst_additive_error(grid, n_disks)
                bound = (
                    make_additive_bound(family)(shape, n_disks, method)
                    if family is not None
                    else None
                )
                rows.append(
                    TightnessRow(
                        spec=str(parsed),
                        shape=shape,
                        n_disks=n_disks,
                        error=res.error,
                        worst_query=res.witness,
                        n_queries=res.n_queries,
                        bound_family=family,
                        bound=bound,
                        lower=floor(n_disks, len(shape)),
                    )
                )
    return rows
