"""Exact worst-case additive error of a declustering over all box queries.

The declustering literature (Doerr–Hebbinghaus–Werth and the curve-based
schemes) states quality as *additive error*: for a query Q on a Cartesian
product file with M disks,

    err(Q) = (busiest disk's cell count in Q)  -  ceil(|Q| / M)

i.e. how far the response exceeds the clairvoyant ideal.  This module
measures the exact worst case over **every** axis-aligned box query of a
grid — not a sample — which is what makes the bounds in
:mod:`repro.theory.bounds` falsifiable: per-disk d-dimensional prefix sums
give all origins of one query shape in a single vectorized sweep, so the
full enumeration is ``O(M * N * #shapes)`` instead of ``O(N^2 * #shapes)``.

Also here: the exact worst-case *run count* of a linearization over the
same query set (:func:`max_box_runs`), the quantity the ``curve_runs``
bound family is built from — round robin along a curve answers Q within
``runs(Q) - 1`` of the ideal.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from math import ceil, prod

import numpy as np

from repro.gridfile.cartesian import cartesian_product_file

__all__ = [
    "AdditiveErrorResult",
    "scheme_disk_grid",
    "worst_additive_error",
    "curve_rank_grid",
    "max_box_runs",
]


@dataclass(frozen=True)
class AdditiveErrorResult:
    """Worst-case additive error of one assignment, with its witness query."""

    error: int
    origin: "tuple[int, ...]"
    query_shape: "tuple[int, ...]"
    n_queries: int

    @property
    def witness(self) -> "tuple[tuple[int, ...], tuple[int, ...]]":
        """The worst query as ``(origin, side lengths)``."""
        return (self.origin, self.query_shape)


def scheme_disk_grid(method, shape, n_disks: int, rng=1996) -> np.ndarray:
    """Per-cell disk grid of ``method`` on a Cartesian product file.

    Works for every registered scheme, not just index-based ones: the grid
    is realized as a Cartesian product file whose bucket ids are the
    flattened cell indices (so a proximity method's bucket assignment *is*
    the cell assignment), holding one point at each cell's center — every
    bucket nonempty, data perfectly uniform, so data-sensitive schemes see
    the pure structure.
    """
    shape = tuple(int(n) for n in shape)
    dims = len(shape)
    centers = np.meshgrid(
        *[(np.arange(n) + 0.5) / n for n in shape], indexing="ij"
    )
    points = np.stack([c.ravel() for c in centers], axis=1)
    gf = cartesian_product_file(points, np.zeros(dims), np.ones(dims), shape)
    assignment = method.assign(gf, n_disks, rng=rng)
    return assignment.reshape(shape)


def _prefix_sums(disk_grid: np.ndarray, n_disks: int) -> np.ndarray:
    """``P[m]``: zero-padded d-dim prefix sums of the disk-m indicator."""
    shape = disk_grid.shape
    p = np.zeros((n_disks,) + tuple(n + 1 for n in shape), dtype=np.int64)
    core = (slice(None),) + tuple(slice(1, None) for _ in shape)
    p[core] = (disk_grid[None] == np.arange(n_disks).reshape((-1,) + (1,) * len(shape)))
    for axis in range(1, len(shape) + 1):
        np.cumsum(p, axis=axis, out=p)
    return p


def worst_additive_error(disk_grid: np.ndarray, n_disks: int) -> AdditiveErrorResult:
    """Exact max of ``err(Q)`` over every box query of the grid."""
    disk_grid = np.asarray(disk_grid)
    shape = disk_grid.shape
    p = _prefix_sums(disk_grid, n_disks)
    best = AdditiveErrorResult(-1, (0,) * len(shape), (0,) * len(shape), 0)
    n_queries = 0
    for qshape in product(*(range(1, n + 1) for n in shape)):
        counts = p
        for axis, l in enumerate(qshape):
            hi = [slice(None)] * counts.ndim
            lo = [slice(None)] * counts.ndim
            hi[axis + 1] = slice(l, None)
            lo[axis + 1] = slice(0, counts.shape[axis + 1] - l)
            counts = counts[tuple(hi)] - counts[tuple(lo)]
        n_queries += counts[0].size
        busiest = counts.max(axis=0)
        err = busiest - ceil(prod(qshape) / n_disks)
        worst = int(err.max())
        if worst > best.error:
            origin = np.unravel_index(int(err.argmax()), err.shape)
            best = AdditiveErrorResult(
                worst, tuple(int(o) for o in origin), qshape, 0
            )
    return AdditiveErrorResult(best.error, best.origin, best.query_shape, n_queries)


def curve_rank_grid(method, shape) -> "np.ndarray | None":
    """Per-cell curve ranks for a curve-based scheme (None if not one).

    The rank grid is what ``mode="rank"`` HCAM deals round-robin: cell ->
    position of its curve key among all grid cells' keys.
    """
    make_curve = getattr(method, "_curve", None)
    if make_curve is None:
        return None
    shape = tuple(int(n) for n in shape)
    curve = make_curve(shape)
    mesh = np.meshgrid(*[np.arange(n) for n in shape], indexing="ij")
    cells = np.stack([m.ravel() for m in mesh], axis=1)
    keys = curve.index(cells)
    ranks = np.empty(keys.size, dtype=np.int64)
    ranks[np.argsort(keys, kind="stable")] = np.arange(keys.size)
    return ranks.reshape(shape)


def max_box_runs(rank_grid: np.ndarray) -> int:
    """Exact max number of maximal rank runs over every box query.

    A box's rank set splits into maximal runs of consecutive integers;
    ``runs(Q) = |Q| - #(consecutive rank pairs with both cells inside Q)``.
    Each consecutive pair occupies an axis-aligned *origin box* of queries
    containing it, so per query shape the pair counts for all origins
    accumulate through a d-dimensional difference array — again avoiding
    per-query enumeration.
    """
    rank_grid = np.asarray(rank_grid)
    shape = rank_grid.shape
    dims = len(shape)
    order = np.argsort(rank_grid.ravel(), kind="stable")
    walk = np.stack(np.unravel_index(order, shape), axis=1)
    lo = np.minimum(walk[:-1], walk[1:])
    hi = np.maximum(walk[:-1], walk[1:])
    ns = np.array(shape)
    worst = 0
    for qshape in product(*(range(1, n + 1) for n in shape)):
        l = np.array(qshape)
        vol_cells = int(np.prod(l))  # every box of this shape holds vol cells
        a = np.maximum(hi - l + 1, 0)
        b = np.minimum(lo, ns - l)
        ok = (a <= b).all(axis=1)
        grid_shape = tuple(int(n - lk + 2) for n, lk in zip(shape, qshape))
        diff = np.zeros(grid_shape, dtype=np.int64)
        av, bv = a[ok], b[ok] + 1
        for corner in product((0, 1), repeat=dims):
            pts = tuple(
                (bv if c else av)[:, k] for k, c in enumerate(corner)
            )
            np.add.at(diff, pts, 1 if sum(corner) % 2 == 0 else -1)
        for axis in range(dims):
            np.cumsum(diff, axis=axis, out=diff)
        pairs = diff[tuple(slice(0, n - lk + 1) for n, lk in zip(shape, qshape))]
        runs = vol_cells - pairs
        worst = max(worst, int(runs.max()))
    return worst
