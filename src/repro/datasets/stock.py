"""Stock-market surrogate dataset (stock.3d).

The paper's stock.3d holds 127 026 quotes of 383 stocks from 08/30/93 to
09/15/95, indexed by (stock id, closing price, date).  The original FTP dump
is gone; we synthesize per-stock geometric random walks that reproduce the
structural properties the paper calls out:

* the date x id and date x price slices are roughly uniform;
* the id x price slice is "a series of hot-spots, each corresponding to an
  individual stock over a time period" — each random walk stays near its own
  price level, concentrating its quotes in a narrow price band;
* correlations similar to correl.2d arise because a stock's price today
  predicts its price tomorrow.

See DESIGN.md §4 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive_int

__all__ = ["stock_3d", "N_STOCKS", "N_DAYS"]

#: Number of distinct stocks in the paper's dataset.
N_STOCKS = 383
#: Trading days between 08/30/93 and 09/15/95.
N_DAYS = 517


def stock_3d(
    n: int = 127_026,
    n_stocks: int = N_STOCKS,
    n_days: int = N_DAYS,
    daily_volatility: float = 0.02,
    rng=None,
) -> np.ndarray:
    """Generate ``n`` quote records ``(stock id, price, day)``.

    Each stock gets a contiguous listing window (windows are sized so the
    total record count is exactly ``n``, mimicking stocks entering/leaving
    the sample) and a geometric random walk with log-uniform initial price.

    Returns
    -------
    numpy.ndarray
        ``(n, 3)`` records; column 0 = stock id (0..n_stocks-1), column 1 =
        price, column 2 = trading-day index (0..n_days-1).
    """
    check_positive_int(n, "n")
    check_positive_int(n_stocks, "n_stocks")
    check_positive_int(n_days, "n_days")
    if n > n_stocks * n_days:
        raise ValueError("cannot fit n records into n_stocks * n_days slots")
    rng = as_rng(rng)

    # Window lengths: random in [1, n_days], rescaled to sum exactly to n.
    raw = rng.uniform(0.3, 1.0, size=n_stocks)
    lengths = np.maximum(1, np.floor(raw * n / raw.sum()).astype(np.int64))
    lengths = np.minimum(lengths, n_days)
    # Fix rounding drift one record at a time.
    drift = n - int(lengths.sum())
    order = rng.permutation(n_stocks)
    i = 0
    while drift != 0:
        s = order[i % n_stocks]
        if drift > 0 and lengths[s] < n_days:
            lengths[s] += 1
            drift -= 1
        elif drift < 0 and lengths[s] > 1:
            lengths[s] -= 1
            drift += 1
        i += 1

    records = np.empty((n, 3), dtype=np.float64)
    row = 0
    for sid in range(n_stocks):
        length = int(lengths[sid])
        start = int(rng.integers(0, n_days - length + 1))
        p0 = float(np.exp(rng.uniform(np.log(3.0), np.log(200.0))))
        steps = rng.normal(0.0, daily_volatility, size=length)
        prices = p0 * np.exp(np.cumsum(steps))
        days = np.arange(start, start + length, dtype=np.float64)
        records[row : row + length, 0] = sid
        records[row : row + length, 1] = prices
        records[row : row + length, 2] = days
        row += length
    assert row == n
    return records
