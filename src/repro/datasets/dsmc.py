"""DSMC surrogate datasets.

The paper's DSMC.3d is one snapshot of a Direct Simulation Monte Carlo run
(rarefied gas flow; 52 857 particle records, non-uniformly distributed) and
its SP-2 dataset is 59 such snapshots (3M records, 4-d: t, x, y, z).  The
real traces are not available, so we synthesize the canonical DSMC scenario
— hypersonic free stream over a blunt body — which reproduces the
distributional property the paper leans on: a substantial uniformly
distributed free-stream fraction (higher than hot.2d's, which is why
index-based response curves flatten *earlier* on DSMC.3d) combined with
strong density gradients (bow-shock compression layer and a rarefied wake).

See DESIGN.md §4 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive_int

__all__ = ["dsmc_3d", "dsmc_4d", "DOMAIN_3D"]

#: Unit-cube flow domain of the 3-d snapshot.
DOMAIN_3D = (np.zeros(3), np.ones(3))


def _snapshot(
    n: int,
    rng: np.random.Generator,
    body_center: np.ndarray,
    body_radius: float = 0.12,
    free_stream: float = 0.45,
    shock: float = 0.35,
) -> np.ndarray:
    """One flow snapshot: free stream + bow-shock layer + wake, body excluded.

    Parameters are fractions of particles per component (the remainder forms
    the wake).  Flow direction is +x.
    """
    n_free = int(round(n * free_stream))
    n_shock = int(round(n * shock))
    n_wake = n - n_free - n_shock

    # Free stream: uniform over the domain.
    free = rng.uniform(0.0, 1.0, size=(n_free, 3))

    # Bow shock: a compressed layer hugging the upstream hemisphere.
    radii = body_radius + np.abs(rng.normal(0.03, 0.02, size=n_shock))
    # Upstream directions (x-component negative): sample on the sphere and
    # flip downstream-pointing vectors.
    direc = rng.normal(size=(n_shock, 3))
    direc /= np.linalg.norm(direc, axis=1, keepdims=True)
    direc[direc[:, 0] > 0, 0] *= -1.0
    shock_pts = body_center + radii[:, None] * direc

    # Wake: rarefied expanding cone behind the body.
    wx = rng.uniform(0.0, 1.0 - body_center[0], size=n_wake) ** 0.7
    spread = body_radius * (0.5 + 2.0 * wx)
    wy = rng.normal(0.0, spread)
    wz = rng.normal(0.0, spread)
    wake_pts = np.stack(
        [body_center[0] + wx, body_center[1] + wy, body_center[2] + wz], axis=1
    )

    pts = np.concatenate([free, shock_pts, wake_pts])
    pts = np.clip(pts, 0.0, 1.0)

    # No particles inside the solid body: re-seat them just outside.
    rel = pts - body_center
    dist = np.linalg.norm(rel, axis=1)
    inside = dist < body_radius
    if inside.any():
        safe_dist = np.maximum(dist[inside, None], 1e-12)
        pts[inside] = body_center + (rel[inside] / safe_dist) * (body_radius * 1.01)
        pts = np.clip(pts, 0.0, 1.0)
    return pts


def dsmc_3d(n: int = 52_857, rng=None) -> np.ndarray:
    """Surrogate for the paper's DSMC.3d snapshot.

    Parameters
    ----------
    n:
        Number of particle records (paper: 52 857).
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        ``(n, 3)`` particle coordinates in the unit cube.
    """
    check_positive_int(n, "n")
    rng = as_rng(rng)
    return _snapshot(n, rng, body_center=np.array([0.45, 0.5, 0.5]))


def dsmc_4d(
    n: int = 300_000,
    snapshots: int = 59,
    rng=None,
) -> np.ndarray:
    """Surrogate for the 4-d SP-2 dataset: 59 snapshots of the moving flow.

    The paper loaded 3 million particle records from 59 snapshots into a 4-d
    grid file (coordinates t, x, y, z).  The default here is a 300 000-record
    scale model — same snapshot count, same spatio-temporal structure, ~10x
    fewer particles per snapshot — so the full pipeline runs on a laptop;
    pass ``n=3_000_000`` for the full-size file.

    The body drifts downstream over time, so the spatial distribution shifts
    from snapshot to snapshot (giving the temporal dimension real selectivity
    structure, as a time-dependent simulation would).

    Returns
    -------
    numpy.ndarray
        ``(n, 4)`` records ``(t, x, y, z)`` with t in [0, snapshots).
    """
    check_positive_int(n, "n")
    check_positive_int(snapshots, "snapshots")
    rng = as_rng(rng)
    per = np.full(snapshots, n // snapshots, dtype=np.int64)
    per[: n - int(per.sum())] += 1
    out = np.empty((n, 4), dtype=np.float64)
    row = 0
    for t in range(snapshots):
        frac = t / max(1, snapshots - 1)
        center = np.array([0.3 + 0.3 * frac, 0.5, 0.5])
        pts = _snapshot(int(per[t]), rng, body_center=center)
        out[row : row + per[t], 0] = t
        out[row : row + per[t], 1:] = pts
        row += per[t]
    return out
