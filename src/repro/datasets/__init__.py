"""Datasets: the paper's three synthetic 2-d files and surrogates for its
real 3-d/4-d files.

Synthetic (exact reconstructions of §2.2):

* ``uniform.2d`` — 10 000 uniform points in [0, 2000]²;
* ``hot.2d`` — 5 000 uniform + 5 000 normal around the center (a hot spot);
* ``correl.2d`` — normal distribution along the diagonal y = x.

Surrogates (substitutions documented in DESIGN.md §4):

* ``dsmc.3d`` — 52 857 particles of a rarefied-gas flow around a blunt body
  (free stream + bow-shock compression + wake), standing in for the paper's
  DSMC snapshot;
* ``stock.3d`` — 127 026 (stock id, price, date) records from 383 geometric
  random walks, standing in for the MIT AI-lab stock quotes;
* ``dsmc.4d`` — 59 snapshots of the 3-d flow with a moving body, standing in
  for the 3M-record SP-2 dataset (record count configurable).
"""

from repro.datasets.dsmc import dsmc_3d, dsmc_4d
from repro.datasets.loader import DATASETS, Dataset, build_gridfile, load
from repro.datasets.mhd import mhd_3d
from repro.datasets.stock import stock_3d
from repro.datasets.synthetic import correl_2d, hot_2d, uniform_2d

__all__ = [
    "Dataset",
    "DATASETS",
    "load",
    "build_gridfile",
    "uniform_2d",
    "hot_2d",
    "correl_2d",
    "dsmc_3d",
    "dsmc_4d",
    "mhd_3d",
    "stock_3d",
]
