"""Dataset registry and grid-file builders.

``load(name)`` returns a :class:`Dataset` bundling the points, the domain,
and the grid-file construction parameters calibrated so the resulting files
match the structural statistics the paper reports (bucket counts, merged
fractions, grid resolutions) — the calibration is recorded in
``repro.experiments.config`` and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.datasets.dsmc import DOMAIN_3D, dsmc_3d, dsmc_4d
from repro.datasets.mhd import mhd_3d
from repro.datasets.stock import N_DAYS, N_STOCKS, stock_3d
from repro.datasets.synthetic import DOMAIN_2D, correl_2d, hot_2d, uniform_2d
from repro.gridfile.bulkload import bulk_load
from repro.gridfile.gridfile import GridFile

__all__ = ["Dataset", "DATASETS", "load", "build_gridfile"]


@dataclass(frozen=True)
class Dataset:
    """A dataset plus its calibrated grid-file construction parameters."""

    name: str
    points: np.ndarray
    domain_lo: np.ndarray
    domain_hi: np.ndarray
    #: Bucket capacity in records (see ``repro.experiments.config``).
    capacity: int
    #: Scale resolution for bulk loading (None = dynamic insertion).
    resolution: "tuple[int, ...] | None"
    #: ``"dynamic"`` (insert record by record) or ``"bulk"``.
    builder: str
    description: str = ""

    @property
    def n_records(self) -> int:
        """Number of records."""
        return self.points.shape[0]

    @property
    def dims(self) -> int:
        """Dimensionality."""
        return self.points.shape[1]


def _uniform2d(rng, **kw):
    return Dataset(
        "uniform.2d",
        uniform_2d(rng=rng, **kw),
        *DOMAIN_2D,
        capacity=56,
        resolution=None,
        builder="dynamic",
        description="10,000 uniformly distributed points (paper Fig. 2 left)",
    )


def _hot2d(rng, **kw):
    return Dataset(
        "hot.2d",
        hot_2d(rng=rng, **kw),
        *DOMAIN_2D,
        capacity=56,
        resolution=None,
        builder="dynamic",
        description="5,000 uniform + 5,000 normal at the center (paper Fig. 2 middle)",
    )


def _correl2d(rng, **kw):
    return Dataset(
        "correl.2d",
        correl_2d(rng=rng, **kw),
        *DOMAIN_2D,
        capacity=56,
        resolution=None,
        builder="dynamic",
        description="normal distribution along the diagonal y=x (paper Fig. 2 right)",
    )


def _dsmc3d(rng, **kw):
    return Dataset(
        "dsmc.3d",
        dsmc_3d(rng=rng, **kw),
        *DOMAIN_3D,
        capacity=170,
        resolution=(16, 12, 8),
        builder="bulk",
        description="52,857-particle rarefied-flow snapshot (DSMC.3d surrogate)",
    )


def _stock3d(rng, **kw):
    pts = stock_3d(rng=rng, **kw)
    lo = np.array([0.0, 0.0, 0.0])
    hi = np.array([float(N_STOCKS), float(np.ceil(pts[:, 1].max() * 1.01)), float(N_DAYS)])
    return Dataset(
        "stock.3d",
        pts,
        lo,
        hi,
        capacity=150,
        resolution=(32, 22, 9),
        builder="bulk",
        description="127,026 quotes of 383 random-walk stocks (stock.3d surrogate)",
    )


def _mhd3d(rng, **kw):
    return Dataset(
        "mhd.3d",
        mhd_3d(rng=rng, **kw),
        *DOMAIN_3D,
        capacity=170,
        resolution=(16, 12, 12),
        builder="bulk",
        description="60,000-record magnetosphere snapshot (MHD surrogate, paper §4)",
    )


def _dsmc4d(rng, **kw):
    pts = dsmc_4d(rng=rng, **kw)
    snapshots = int(pts[:, 0].max()) + 1
    lo = np.array([0.0, 0.0, 0.0, 0.0])
    hi = np.array([float(snapshots - 1), 1.0, 1.0, 1.0])
    return Dataset(
        "dsmc.4d",
        pts,
        lo,
        hi,
        capacity=150,
        resolution=(7, 28, 21, 39),
        builder="bulk",
        description="59-snapshot 4-d flow (SP-2 dataset surrogate, scaled)",
    )


#: Registry of dataset factories keyed by name.
DATASETS = {
    "uniform.2d": _uniform2d,
    "hot.2d": _hot2d,
    "correl.2d": _correl2d,
    "dsmc.3d": _dsmc3d,
    "stock.3d": _stock3d,
    "dsmc.4d": _dsmc4d,
    "mhd.3d": _mhd3d,
}


def load(name: str, rng=None, **kwargs) -> Dataset:
    """Load (generate) a dataset by name.

    Parameters
    ----------
    name:
        One of ``uniform.2d``, ``hot.2d``, ``correl.2d``, ``dsmc.3d``,
        ``stock.3d``, ``dsmc.4d``.
    rng:
        Seed or generator (datasets are synthetic and reproducible).
    **kwargs:
        Passed to the underlying generator (e.g. ``n=...``).
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    return DATASETS[name](as_rng(rng), **kwargs)


def build_gridfile(ds: Dataset, capacity: "int | None" = None) -> GridFile:
    """Build the grid file for a dataset using its calibrated parameters."""
    capacity = capacity if capacity is not None else ds.capacity
    if ds.builder == "dynamic":
        return GridFile.from_points(ds.points, ds.domain_lo, ds.domain_hi, capacity)
    return bulk_load(
        ds.points, ds.domain_lo, ds.domain_hi, capacity, resolution=ds.resolution
    )
