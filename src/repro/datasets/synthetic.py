"""The paper's three synthetic 2-d datasets (§2.2).

Each contains 10 000 points in the domain [0, 2000] x [0, 2000]:

* **uniform.2d** — uniformly distributed points; the resulting grid file is
  nearly a Cartesian product file (the paper: only 4 of 252 buckets merged).
* **hot.2d** — a hot spot: 5 000 uniform points overlaid with 5 000 points
  normally distributed around the domain center (169 of 241 buckets merged).
* **correl.2d** — correlated attributes: points normally distributed along
  the diagonal y = x (164 of 242 buckets merged).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive_int

__all__ = ["uniform_2d", "hot_2d", "correl_2d", "DOMAIN_2D"]

#: The 2-d data domain used by all three synthetic datasets.
DOMAIN_2D = (np.array([0.0, 0.0]), np.array([2000.0, 2000.0]))


def _clip_to_domain(points: np.ndarray) -> np.ndarray:
    lo, hi = DOMAIN_2D
    return np.clip(points, lo, hi)


def uniform_2d(n: int = 10_000, rng=None) -> np.ndarray:
    """Uniformly distributed points over [0, 2000]²."""
    check_positive_int(n, "n")
    rng = as_rng(rng)
    lo, hi = DOMAIN_2D
    return rng.uniform(lo, hi, size=(n, 2))


def hot_2d(n: int = 10_000, rng=None, sigma: float = 200.0) -> np.ndarray:
    """Hot spot in the center: half uniform, half normal around (1000, 1000).

    Parameters
    ----------
    n:
        Total number of points; ``n // 2`` uniform, the rest normal.
    sigma:
        Standard deviation of the hot spot (in domain units).
    """
    check_positive_int(n, "n")
    rng = as_rng(rng)
    lo, hi = DOMAIN_2D
    n_uniform = n // 2
    uniform = rng.uniform(lo, hi, size=(n_uniform, 2))
    center = (lo + hi) / 2.0
    hot = rng.normal(center, sigma, size=(n - n_uniform, 2))
    return _clip_to_domain(np.concatenate([uniform, hot]))


def correl_2d(n: int = 10_000, rng=None, sigma: float = 120.0) -> np.ndarray:
    """Correlated attributes: normal spread around the diagonal y = x.

    Points are generated as a uniformly distributed position ``t`` along the
    diagonal plus a normal offset perpendicular to it — the "temperature vs
    pressure" functional-dependence pattern the paper describes.
    """
    check_positive_int(n, "n")
    rng = as_rng(rng)
    lo, hi = DOMAIN_2D
    t = rng.uniform(lo[0], hi[0], size=n)
    offset = rng.normal(0.0, sigma, size=n)
    inv_sqrt2 = 1.0 / np.sqrt(2.0)
    x = t - offset * inv_sqrt2
    y = t + offset * inv_sqrt2
    return _clip_to_domain(np.stack([x, y], axis=1))
