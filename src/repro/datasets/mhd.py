"""MHD magnetosphere surrogate dataset.

The paper's conclusions (§4) say the SP-2 evaluation continues "on two large
data sets consisting of snapshots from DSMC and MHD respectively" — the MHD
being a magneto-hydro-dynamics simulation of planetary magnetospheres
(Tanaka 1993).  We synthesize the canonical magnetosphere morphology so that
follow-up experiment can run: solar wind flowing in +x around a planet
produces

* a uniform **solar wind** background upstream and around,
* a dense **magnetosheath** draped along a paraboloid bow shock,
* an elongated low-latitude **magnetotail** stretching downstream,
* a compact dense **inner magnetosphere** around the planet.

These components give the dataset the mix that stresses declustering: an
extended uniform region, a thin curved high-density sheet, and an elongated
anisotropic structure (unlike DSMC's roughly isotropic wake).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive_int

__all__ = ["mhd_3d", "PLANET_CENTER", "PLANET_RADIUS"]

#: Planet position in the unit cube (solar wind arrives from -x).
PLANET_CENTER = np.array([0.35, 0.5, 0.5])
#: Planet radius; no plasma records inside.
PLANET_RADIUS = 0.06


def _paraboloid_x(r2: np.ndarray, standoff: float = 0.12, flare: float = 1.2) -> np.ndarray:
    """Bow-shock surface: x(r²) = x_planet - standoff + flare * r²."""
    return PLANET_CENTER[0] - standoff + flare * r2


def mhd_3d(
    n: int = 60_000,
    rng=None,
    wind: float = 0.35,
    sheath: float = 0.3,
    tail: float = 0.25,
) -> np.ndarray:
    """Generate ``n`` plasma records of a magnetosphere snapshot.

    Parameters
    ----------
    n:
        Number of records.
    wind, sheath, tail:
        Fractions of records in the solar wind, magnetosheath and
        magnetotail components; the remainder forms the inner magnetosphere.

    Returns
    -------
    numpy.ndarray
        ``(n, 3)`` coordinates in the unit cube.
    """
    check_positive_int(n, "n")
    if wind + sheath + tail >= 1.0:
        raise ValueError("component fractions must leave room for the inner region")
    rng = as_rng(rng)
    n_wind = int(round(n * wind))
    n_sheath = int(round(n * sheath))
    n_tail = int(round(n * tail))
    n_inner = n - n_wind - n_sheath - n_tail

    # Solar wind: uniform background.
    wind_pts = rng.uniform(0.0, 1.0, size=(n_wind, 3))

    # Magnetosheath: points draped on the bow-shock paraboloid with a thin
    # normal spread.
    ry = rng.normal(0.0, 0.22, size=n_sheath)
    rz = rng.normal(0.0, 0.22, size=n_sheath)
    r2 = ry**2 + rz**2
    x = _paraboloid_x(r2) + np.abs(rng.normal(0.0, 0.025, size=n_sheath))
    sheath_pts = np.stack(
        [x, PLANET_CENTER[1] + ry, PLANET_CENTER[2] + rz], axis=1
    )

    # Magnetotail: elongated structure downstream, radius growing slowly.
    tx = rng.uniform(0.0, 1.0 - PLANET_CENTER[0], size=n_tail) ** 0.8
    radius = 0.05 + 0.10 * tx
    ang = rng.uniform(0.0, 2 * np.pi, size=n_tail)
    rad = np.abs(rng.normal(0.0, radius))
    tail_pts = np.stack(
        [
            PLANET_CENTER[0] + tx,
            PLANET_CENTER[1] + rad * np.cos(ang),
            PLANET_CENTER[2] + rad * np.sin(ang),
        ],
        axis=1,
    )

    # Inner magnetosphere: dense shell just outside the planet.
    direc = rng.normal(size=(n_inner, 3))
    direc /= np.maximum(np.linalg.norm(direc, axis=1, keepdims=True), 1e-12)
    shell_r = PLANET_RADIUS + np.abs(rng.normal(0.02, 0.02, size=n_inner))
    inner_pts = PLANET_CENTER + shell_r[:, None] * direc

    pts = np.concatenate([wind_pts, sheath_pts, tail_pts, inner_pts])
    pts = np.clip(pts, 0.0, 1.0)

    # Evacuate the planet body.
    rel = pts - PLANET_CENTER
    dist = np.linalg.norm(rel, axis=1)
    inside = dist < PLANET_RADIUS
    if inside.any():
        safe = np.maximum(dist[inside, None], 1e-12)
        pts[inside] = PLANET_CENTER + (rel[inside] / safe) * (PLANET_RADIUS * 1.01)
        pts = np.clip(pts, 0.0, 1.0)
    return pts
