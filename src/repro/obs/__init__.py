"""Zero-dependency observability for the simulator and declustering pipeline.

Three cooperating layers, all off by default and bit-for-bit neutral (with
everything disabled, no output of any sweep, benchmark or cluster run
changes — pinned by ``tests/test_obs_determinism.py``):

* :class:`Tracer` — structured JSONL span/event records with monotonic
  simulated-time stamps, entity ids (``coord``, ``node3``, ``node1.disk0``,
  ``query17``) and cause links, wired through
  :class:`repro.parallel.des.Simulator`, the coordinator/worker request
  protocol, fault injection and replica failover.  Enable per run
  (``run_queries(..., tracer=Tracer(path))``) or globally via the
  ``REPRO_TRACE=/path/to/trace.jsonl`` environment variable.
* :class:`MetricsRegistry` — counters / gauges / histograms (queue depth,
  per-disk service time, retry counts, cache hit rate, minimax growth
  steps), snapshotted into ``PerfReport.metrics`` after every cluster run.
* :data:`PROFILER` — lightweight wall-clock phase timers around bucket
  resolution, the response-time kernel and each declustering method;
  enabled by ``REPRO_PROFILE=1`` (or implied by ``REPRO_TRACE``).

The ``repro trace`` CLI records, summarizes and diffs trace files; the
schema and metric catalog live in ``docs/observability.md``.
"""

from repro.obs.metrics import (
    GLOBAL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import PROFILER, PhaseProfiler
from repro.obs.summary import diff_summaries, render_summary, summarize
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    default_tracer,
    read_trace,
    reset_default_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "default_tracer",
    "reset_default_tracer",
    "read_trace",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "GLOBAL_METRICS",
    "PhaseProfiler",
    "PROFILER",
    "summarize",
    "render_summary",
    "diff_summaries",
]
