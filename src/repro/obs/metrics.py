"""Counter / gauge / histogram registry for simulator statistics.

A :class:`MetricsRegistry` is a named collection of three instrument types:

* :class:`Counter` — monotonically increasing totals (timeouts, retries,
  blocks read);
* :class:`Gauge` — last-value instruments (queries in flight);
* :class:`Histogram` — fixed-bound bucket counts plus count/sum/min/max
  (per-disk service time, query latency, queue depth).

Everything is deterministic pure Python (no wall clock, no randomness), so
registries populated during a simulated run are identical across repeated
runs with the same seed — which lets the determinism suite compare
``PerfReport.metrics`` snapshots exactly.  :data:`GLOBAL_METRICS` is a
process-wide registry for components without a natural per-run home (the
minimax growth-step counter); it is observability only and never feeds back
into any result.
"""

from __future__ import annotations

import math

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "GLOBAL_METRICS"]

#: Default histogram bucket upper bounds (seconds-scale; +inf is implicit).
DEFAULT_BOUNDS = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self.value += amount


class Gauge:
    """A last-value instrument."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-bound bucket counts plus count / sum / min / max.

    ``bounds`` are inclusive upper edges; one overflow bucket (``+inf``)
    is implicit.  Bounds must be strictly increasing.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds=DEFAULT_BOUNDS):
        bounds = tuple(float(b) for b in bounds)
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value) -> None:
        """Record one observation."""
        value = float(value)
        i = 0
        for b in self.bounds:
            if value <= b:
                break
            i += 1
        self.bucket_counts[i] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as plain dicts."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str, bounds=DEFAULT_BOUNDS) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(bounds)
        return h

    def snapshot(self) -> dict:
        """JSON-serializable state of every instrument."""
        out: dict = {}
        if self._counters:
            out["counters"] = {
                name: c.value for name, c in sorted(self._counters.items())
            }
        if self._gauges:
            out["gauges"] = {name: g.value for name, g in sorted(self._gauges.items())}
        if self._histograms:
            out["histograms"] = {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "mean": h.mean,
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                }
                for name, h in sorted(self._histograms.items())
            }
        return out

    def reset(self) -> None:
        """Drop every instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: Process-wide registry for components without a per-run registry
#: (e.g. ``minimax.growth_steps``).  Observability only.
GLOBAL_METRICS = MetricsRegistry()
