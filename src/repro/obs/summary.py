"""Trace-file analysis: summarize one run, diff two runs.

:func:`summarize` folds a record list (from :func:`repro.obs.read_trace` or
a live :class:`~repro.obs.Tracer`) into a plain-dict summary:

* per-name event counts and the simulated-time extent of the run;
* per-disk busy time and utilization, reconstructed from ``disk.read``
  events (their ``start``/``end`` attrs are the reservation window);
* query statistics from the ``query`` spans (completed, aborted, latency
  mean/max);
* fault, timeout/retry/failover and message-drop counts;
* phase timings (``phase`` records) and the final metrics snapshot.

:func:`diff_summaries` aligns two summaries key by key and reports deltas —
the regression-hunting workflow is ``repro trace record`` before and after
a change, then ``repro trace diff old.jsonl new.jsonl``.
"""

from __future__ import annotations

__all__ = ["summarize", "render_summary", "diff_summaries"]


def summarize(records) -> dict:
    """Fold trace records into a summary dict (see module docs)."""
    names: dict[str, int] = {}
    disks: dict[str, dict] = {}
    phases: dict[str, dict] = {}
    metrics: dict = {}
    t_max = 0.0
    n_causal = 0
    queries = {"submitted": 0, "completed": 0, "aborted": 0}
    latencies: list[float] = []
    open_t: dict[int, float] = {}
    faults: dict[str, int] = {}

    for rec in records:
        kind = rec.get("kind")
        if kind == "meta":
            continue
        name = rec.get("name", "")
        attrs = rec.get("attrs", {})
        if kind == "phase":
            phases[name] = {
                "seconds": float(attrs.get("seconds", 0.0)),
                "calls": int(attrs.get("calls", 0)),
            }
            continue
        if kind == "metrics":
            metrics = attrs
            continue
        names[name] = names.get(name, 0) + 1
        n_causal += 1
        t = rec.get("t")
        if t is not None and t > t_max:
            t_max = t
        if name == "disk.read":
            entity = rec.get("entity", "?")
            slot = disks.setdefault(entity, {"busy": 0.0, "blocks": 0, "reads": 0})
            slot["busy"] += float(attrs.get("end", 0.0)) - float(attrs.get("start", 0.0))
            slot["blocks"] += int(attrs.get("n_blocks", 0))
            slot["reads"] += 1
        elif name.startswith("fault."):
            faults[name[len("fault."):]] = faults.get(name[len("fault."):], 0) + 1
        elif name == "query":
            if kind == "span_open":
                queries["submitted"] += 1
                open_t[rec["id"]] = rec.get("t", 0.0)
            elif kind == "span_close":
                queries["completed"] += 1
                if attrs.get("aborted"):
                    queries["aborted"] += 1
                opened = open_t.pop(rec.get("span"), None)
                if opened is not None:
                    latencies.append(rec.get("t", 0.0) - opened)

    for slot in disks.values():
        slot["utilization"] = slot["busy"] / t_max if t_max > 0 else 0.0

    out = {
        "records": n_causal,
        "elapsed": t_max,
        "events": dict(sorted(names.items())),
        "queries": queries,
        "disks": dict(sorted(disks.items())),
    }
    if latencies:
        out["latency"] = {
            "mean": sum(latencies) / len(latencies),
            "max": max(latencies),
        }
    if faults:
        out["faults"] = dict(sorted(faults.items()))
    if phases:
        out["phases"] = phases
    if metrics:
        out["metrics"] = metrics
    return out


def render_summary(summary: dict) -> str:
    """Human-readable rendering of a :func:`summarize` result."""
    lines = [
        f"records            : {summary['records']}",
        f"elapsed (sim)      : {summary['elapsed'] * 1e3:.3f} ms",
    ]
    q = summary["queries"]
    lines.append(
        f"queries            : {q['submitted']} submitted, "
        f"{q['completed']} completed, {q['aborted']} aborted"
    )
    if "latency" in summary:
        lat = summary["latency"]
        lines.append(
            f"latency            : mean {lat['mean'] * 1e3:.3f} ms, "
            f"max {lat['max'] * 1e3:.3f} ms"
        )
    if summary.get("faults"):
        fstr = ", ".join(f"{k}={v}" for k, v in summary["faults"].items())
        lines.append(f"faults applied     : {fstr}")
    if summary.get("disks"):
        lines.append("disk utilization   :")
        for entity, slot in summary["disks"].items():
            lines.append(
                f"  {entity:<16} busy {slot['busy'] * 1e3:9.3f} ms  "
                f"util {slot['utilization']:6.1%}  "
                f"reads {slot['reads']:5d}  blocks {slot['blocks']}"
            )
    if summary.get("phases"):
        lines.append("phase timings      :")
        for name, ph in sorted(summary["phases"].items()):
            lines.append(
                f"  {name:<28} {ph['seconds'] * 1e3:9.3f} ms  calls {ph['calls']}"
            )
    counters = summary.get("metrics", {}).get("counters")
    if counters:
        lines.append("counters           :")
        for name, value in counters.items():
            lines.append(f"  {name:<28} {value}")
    lines.append("event counts       :")
    for name, count in summary["events"].items():
        lines.append(f"  {name:<28} {count}")
    return "\n".join(lines)


def _diff_numeric(lines, label, a, b, fmt="{:g}"):
    if a != b:
        lines.append(f"  {label:<28} {fmt.format(a)} -> {fmt.format(b)}")


def diff_summaries(a: dict, b: dict) -> str:
    """Line-oriented diff of two :func:`summarize` results.

    Reports every event-count, query, disk-utilization, phase-timing and
    counter difference; returns ``"no differences"`` when the causal
    portions match.
    """
    lines: list[str] = []

    sec = ["events:"]
    for name in sorted(set(a["events"]) | set(b["events"])):
        _diff_numeric(sec, name, a["events"].get(name, 0), b["events"].get(name, 0))
    if len(sec) > 1:
        lines.extend(sec)

    sec = ["queries:"]
    for key in ("submitted", "completed", "aborted"):
        _diff_numeric(sec, key, a["queries"][key], b["queries"][key])
    if len(sec) > 1:
        lines.extend(sec)

    sec = ["elapsed:"]
    _diff_numeric(sec, "elapsed (s)", a["elapsed"], b["elapsed"], fmt="{:.6g}")
    if len(sec) > 1:
        lines.extend(sec)

    sec = ["disk utilization:"]
    for entity in sorted(set(a.get("disks", {})) | set(b.get("disks", {}))):
        ua = a.get("disks", {}).get(entity, {}).get("utilization", 0.0)
        ub = b.get("disks", {}).get(entity, {}).get("utilization", 0.0)
        if abs(ua - ub) > 1e-12:
            sec.append(f"  {entity:<28} {ua:.1%} -> {ub:.1%}")
    if len(sec) > 1:
        lines.extend(sec)

    sec = ["phases (wall-clock, informational):"]
    for name in sorted(set(a.get("phases", {})) | set(b.get("phases", {}))):
        pa = a.get("phases", {}).get(name, {"seconds": 0.0, "calls": 0})
        pb = b.get("phases", {}).get(name, {"seconds": 0.0, "calls": 0})
        if pa["calls"] != pb["calls"]:
            sec.append(f"  {name:<28} calls {pa['calls']} -> {pb['calls']}")
    if len(sec) > 1:
        lines.extend(sec)

    ca = a.get("metrics", {}).get("counters", {})
    cb = b.get("metrics", {}).get("counters", {})
    sec = ["counters:"]
    for name in sorted(set(ca) | set(cb)):
        _diff_numeric(sec, name, ca.get(name, 0), cb.get(name, 0))
    if len(sec) > 1:
        lines.extend(sec)

    return "\n".join(lines) if lines else "no differences"
