"""Structured event/span tracing with JSONL persistence.

A :class:`Tracer` collects flat dict records.  Three causal kinds carry a
simulated-time stamp ``t`` (the emitting component's clock at emission, so
records are globally ordered by ``t``):

``event``
    A point occurrence (``request.send``, ``disk.read``, ``fault.node_crash``).
``span_open`` / ``span_close``
    A durable interval (a query in flight); ``span_close.span`` references
    the matching open record's ``id``.

Two non-causal kinds carry no simulated time: ``phase`` (wall-clock phase
timings from :data:`repro.obs.profile.PROFILER`) and ``metrics`` (a
:class:`repro.obs.metrics.MetricsRegistry` snapshot); the file header is a
``meta`` record whose ``wall`` field is the only wall-clock stamp on the
causal portion of a file — determinism comparisons strip it.

Every record has a file-unique increasing ``id``; ``cause`` (when present)
references an earlier record's ``id``.  These two invariants plus per-entity
``t`` monotonicity and span balance are pinned by the hypothesis suite in
``tests/test_obs_properties.py``.

The :class:`NullTracer` singleton (:data:`NULL_TRACER`) is the disabled
implementation: every method is a no-op and ``enabled`` is ``False``, so
instrumented call sites guard with one attribute check and the disabled
path stays bit-for-bit neutral.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "default_tracer",
    "reset_default_tracer",
    "read_trace",
    "TRACE_ENV",
]

#: Environment variable holding the default trace-output path.
TRACE_ENV = "REPRO_TRACE"

#: Schema version stamped into the ``meta`` header record.
SCHEMA_VERSION = 1


def _json_safe(value):
    """Coerce numpy scalars/arrays so records serialize cleanly."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return value


class Tracer:
    """Collects structured trace records; optionally persists them as JSONL.

    Parameters
    ----------
    path:
        Optional output path.  When set, :meth:`save` (or :meth:`close`)
        writes one JSON object per line, headed by a ``meta`` record.
        Without a path the records stay in :attr:`records` (tests, ad-hoc
        inspection).
    """

    enabled = True

    def __init__(self, path: "str | None" = None):
        self.path = path
        self.records: list[dict] = []
        self._next_id = 0
        self._open_spans: dict[int, dict] = {}
        self._saved = False

    # -- emission ------------------------------------------------------------

    def _emit(self, kind: str, name: str, t, entity, cause, span, attrs) -> int:
        rid = self._next_id
        self._next_id += 1
        rec = {"id": rid, "kind": kind, "name": name}
        if t is not None:
            rec["t"] = float(t)
        if entity is not None:
            rec["entity"] = str(entity)
        if cause is not None:
            rec["cause"] = int(cause)
        if span is not None:
            rec["span"] = int(span)
        if attrs:
            rec["attrs"] = {k: _json_safe(v) for k, v in attrs.items()}
        self.records.append(rec)
        return rid

    def event(self, name: str, t: float, entity=None, cause=None, **attrs) -> int:
        """Record a point event at simulated time ``t``; returns its id."""
        return self._emit("event", name, t, entity, cause, None, attrs)

    def span_open(self, name: str, t: float, entity=None, cause=None, **attrs) -> int:
        """Open a span (an interval with identity); returns the span id."""
        rid = self._emit("span_open", name, t, entity, cause, None, attrs)
        self._open_spans[rid] = self.records[-1]
        return rid

    def span_close(self, span_id: int, t: float, **attrs) -> int:
        """Close the span opened as ``span_id`` at simulated time ``t``."""
        opened = self._open_spans.pop(int(span_id), None)
        if opened is None:
            raise ValueError(f"span {span_id} is not open")
        return self._emit(
            "span_close", opened["name"], t, opened.get("entity"), None, span_id, attrs
        )

    def phases(self, snapshot: dict) -> None:
        """Append one ``phase`` record per profiled phase (wall-clock)."""
        for name in sorted(snapshot):
            data = snapshot[name]
            self._emit("phase", name, None, None, None, None, dict(data))

    def metrics(self, snapshot: dict) -> None:
        """Append a ``metrics`` record holding a registry snapshot."""
        self._emit("metrics", "metrics.snapshot", None, None, None, None, snapshot)

    @property
    def open_spans(self) -> int:
        """Number of spans opened but not yet closed."""
        return len(self._open_spans)

    # -- persistence ---------------------------------------------------------

    def save(self, path: "str | None" = None) -> "str | None":
        """Write all records as JSONL to ``path`` (default: ``self.path``)."""
        path = path or self.path
        if path is None:
            return None
        header = {
            "kind": "meta",
            "schema": SCHEMA_VERSION,
            "wall": time.time(),
            "n_records": len(self.records),
        }
        with open(path, "w") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for rec in self.records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        self._saved = True
        return path

    def close(self) -> None:
        """Persist (when a path is configured) exactly once."""
        if not self._saved:
            self.save()


class NullTracer:
    """Disabled tracer: every method is a no-op, ``enabled`` is False."""

    enabled = False
    records: list = []
    path = None
    open_spans = 0

    def event(self, name, t, entity=None, cause=None, **attrs):
        return None

    def span_open(self, name, t, entity=None, cause=None, **attrs):
        return None

    def span_close(self, span_id, t, **attrs):
        return None

    def phases(self, snapshot):
        return None

    def metrics(self, snapshot):
        return None

    def save(self, path=None):
        return None

    def close(self):
        return None


#: Shared disabled tracer; instrumented code defaults to this.
NULL_TRACER = NullTracer()

_default: "Tracer | NullTracer | None" = None


def default_tracer():
    """The process-wide tracer configured by ``REPRO_TRACE`` (cached).

    Unset/empty means tracing is disabled and :data:`NULL_TRACER` is
    returned; a path means every cluster run without an explicit tracer
    appends to one shared :class:`Tracer` persisted at interpreter exit.
    """
    global _default
    if _default is None:
        path = os.environ.get(TRACE_ENV, "")
        if path:
            import atexit

            _default = Tracer(path=path)
            atexit.register(_default.close)
        else:
            _default = NULL_TRACER
    return _default


def reset_default_tracer() -> None:
    """Drop the cached env tracer (tests that monkeypatch ``REPRO_TRACE``)."""
    global _default
    if isinstance(_default, Tracer):
        _default.close()
    _default = None


def read_trace(path: str) -> list[dict]:
    """Load a JSONL trace file back into a list of record dicts.

    The ``meta`` header is included as the first element when present.
    """
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
