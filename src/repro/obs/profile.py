"""Wall-clock phase timers for the declustering pipeline.

A :class:`PhaseProfiler` accumulates ``(seconds, calls)`` per named phase.
The global :data:`PROFILER` instruments the pipeline's hot boundaries —
bucket resolution, the response-time kernel, each declustering method's
``assign``, minimax partitioning, cluster planning and the event loop — and
is **disabled by default**: a disabled ``phase()`` returns a shared
``nullcontext``, so the overhead on the hot path is one attribute check.

Enable with ``REPRO_PROFILE=1`` (or any non-empty ``REPRO_TRACE``), or
programmatically (``PROFILER.enabled = True``).  Timings are wall-clock and
therefore non-deterministic; they are reported via ``repro trace`` /
benchmark JSON only and never enter simulated results.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext

__all__ = ["PhaseProfiler", "PROFILER", "PROFILE_ENV"]

#: Environment variable enabling the global profiler.
PROFILE_ENV = "REPRO_PROFILE"

_NULL_CTX = nullcontext()


class _Phase:
    """Context manager timing one phase occurrence."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._profiler._record(self._name, time.perf_counter() - self._start)
        return False


class PhaseProfiler:
    """Accumulates wall-clock time and call counts per named phase."""

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._acc: dict[str, list] = {}

    def phase(self, name: str):
        """Context manager timing one occurrence of ``name`` (no-op when
        disabled)."""
        if not self.enabled:
            return _NULL_CTX
        return _Phase(self, name)

    def _record(self, name: str, seconds: float) -> None:
        slot = self._acc.get(name)
        if slot is None:
            slot = self._acc[name] = [0.0, 0]
        slot[0] += seconds
        slot[1] += 1

    def snapshot(self) -> dict:
        """``name -> {"seconds": total, "calls": n}`` for every phase seen."""
        return {
            name: {"seconds": total, "calls": calls}
            for name, (total, calls) in sorted(self._acc.items())
        }

    def reset(self) -> None:
        """Drop all accumulated timings (keeps the enabled flag)."""
        self._acc.clear()


def _env_enabled() -> bool:
    return bool(os.environ.get(PROFILE_ENV) or os.environ.get("REPRO_TRACE"))


#: The process-wide profiler consulted by the instrumented pipeline.
PROFILER = PhaseProfiler(enabled=_env_enabled())
