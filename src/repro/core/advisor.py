"""Method advisor: pick a declustering method for a concrete deployment.

The paper's conclusion is a decision rule ("DM for few disks, HCAM for
many, minimax if O(N²) is affordable") — this module mechanizes it: given
the actual grid file, disk count and a sample workload, it evaluates a
candidate slate and returns the ranking, so an operator does not have to
internalize the trade-off table.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro._util import as_rng, check_positive_int
from repro.core.registry import default_method_slate, make_method
from repro.gridfile.gridfile import GridFile
from repro.sim.diskmodel import evaluate_queries, query_buckets
from repro.sim.metrics import degree_of_data_balance

__all__ = ["recommend", "Recommendation"]


@dataclass(frozen=True)
class Recommendation:
    """One candidate's evaluation on the sample workload."""

    name: str
    mean_response: float
    mean_optimal: float
    balance: float

    @property
    def ratio_to_optimal(self) -> float:
        """Response relative to the clairvoyant bound (1.0 = optimal)."""
        return self.mean_response / max(self.mean_optimal, 1e-12)


def recommend(
    gf: GridFile,
    queries,
    n_disks: int,
    candidates=None,
    rng=None,
) -> list[Recommendation]:
    """Rank candidate methods on a sample workload.

    Parameters
    ----------
    gf:
        The grid file to be declustered.
    queries:
        A representative sample workload (a few hundred queries suffice;
        the per-query bucket lists are resolved once and shared).
    n_disks:
        Target disk count M.
    candidates:
        Iterable of spec strings (default: the canonical built-in slate).
    rng:
        Seed for the randomized methods.

    Returns
    -------
    list[Recommendation]
        Sorted best-first by (mean response, balance).
    """
    check_positive_int(n_disks, "n_disks")
    queries = list(queries)
    if not queries:
        raise ValueError("need a non-empty sample workload")
    if candidates is None:
        candidates = default_method_slate()
    rng = as_rng(rng)
    bucket_lists = query_buckets(gf, queries)
    sizes = gf.bucket_sizes()
    out = []
    for spec in candidates:
        method = make_method(spec) if isinstance(spec, str) else spec
        assignment = method.assign(gf, n_disks, rng=rng)
        ev = evaluate_queries(gf, assignment, queries, n_disks, bucket_lists=bucket_lists)
        out.append(
            Recommendation(
                name=method.name,
                mean_response=ev.mean_response,
                mean_optimal=ev.mean_optimal,
                balance=degree_of_data_balance(assignment, n_disks, sizes),
            )
        )
    out.sort(key=lambda r: (r.mean_response, r.balance))
    return out
