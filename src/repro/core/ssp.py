"""Short Spanning Path (SSP) declustering (Fang, Lee & Chang, VLDB 1986).

SSP linearizes the buckets along a *short spanning path* — a greedy
travelling-salesman-style walk that always steps to the most similar
unvisited bucket — and then deals consecutive path positions to disks in
round robin.  Consecutive buckets on the path are spatially close, so
dealing spreads each neighbourhood across all M disks.  The partitions are
perfectly balanced (sizes differ by at most one), but — as the paper notes —
windows of the greedy path are less tightly similar than minimax trees, so
some nearest-neighbour pairs still collide on a disk (Tables 2–3).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.core.base import DeclusteringMethod, validate_assignment
from repro.core.proximity import proximity_index
from repro.gridfile.gridfile import GridFile

__all__ = ["ShortSpanningPath", "short_spanning_path"]


def short_spanning_path(lo: np.ndarray, hi: np.ndarray, lengths, rng=None) -> np.ndarray:
    """Greedy most-similar-neighbour spanning path over ``n`` boxes.

    Starts at a random box; each step moves to the unvisited box with the
    highest proximity to the current one.  O(n²) vectorized.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` permutation: the visit order.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    n = lo.shape[0]
    rng = as_rng(rng)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    cur = int(rng.integers(n))
    order[0] = cur
    visited[cur] = True
    for i in range(1, n):
        sim = proximity_index(lo[cur], hi[cur], lo, hi, lengths)
        sim[visited] = -np.inf
        cur = int(np.argmax(sim))
        order[i] = cur
        visited[cur] = True
    return order


class ShortSpanningPath(DeclusteringMethod):
    """SSP: greedy similarity path + round-robin dealing.

    Empty buckets are excluded from the path (no disk page) and dealt
    round-robin afterwards, as for :class:`repro.core.minimax.Minimax`.
    """

    name = "SSP"

    def assign(self, gf: GridFile, n_disks: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        lo, hi = gf.bucket_regions()
        nonempty = gf.nonempty_bucket_ids()
        order = short_spanning_path(lo[nonempty], hi[nonempty], gf.scales.lengths, rng)
        assignment = np.zeros(gf.n_buckets, dtype=np.int64)
        assignment[nonempty[order]] = np.arange(order.size) % n_disks
        empty = np.setdiff1d(np.arange(gf.n_buckets), nonempty)
        assignment[empty] = np.arange(empty.size) % n_disks
        return validate_assignment(assignment, gf.n_buckets, n_disks)
