"""Declustering algorithms: the paper's primary contribution.

Two families are implemented:

* **Index-based** (paper §2) — :class:`DiskModulo`, :class:`FieldwiseXor`,
  :class:`HCAM` map each grid *cell* to a disk arithmetically; merged grid
  file buckets receive conflicting per-cell assignments, resolved by one of
  four heuristics (:mod:`repro.core.conflict`): random, most-frequent,
  data-balance, area-balance.
* **Proximity-based** (paper §3) — :class:`Minimax` (the paper's algorithm:
  M spanning trees grown round-robin with a min-of-max selection rule),
  plus the similarity-based baselines :class:`ShortSpanningPath` and
  :class:`MSTDecluster` (Fang et al.).

All methods share one interface::

    assignment = method.assign(gridfile, n_disks, rng=seed)   # (n_buckets,)

with ``assignment[b]`` the disk of bucket ``b``.
"""

from repro.core.advisor import Recommendation, recommend
from repro.core.exact import exact_optimal_assignment
from repro.core.base import DeclusteringMethod, IndexBasedMethod, validate_assignment
from repro.core.conflict import (
    CONFLICT_HEURISTICS,
    resolve_area_balance,
    resolve_data_balance,
    resolve_most_frequent,
    resolve_random,
)
from repro.core.diskmodulo import DiskModulo, GeneralizedDiskModulo
from repro.core.fieldwisexor import FieldwiseXor
from repro.core.hcam import HCAM
from repro.core.kl import KLRefine
from repro.core.latinsquare import LatinSquare
from repro.core.localsearch import WorkloadTuned
from repro.core.minimax import Minimax
from repro.core.onion import OnionScheme
from repro.core.mst import MSTDecluster
from repro.core.random_assign import RandomBalanced, RandomDecluster
from repro.core.placement import (
    PLACEMENT_POLICIES,
    PlacementPolicy,
    ProximitySteal,
    RecomputeOnThreshold,
    RoundRobinLeastLoaded,
    make_placement,
)
from repro.core.redistribute import (
    bounded_reconcile,
    min_proximity_steal,
    minimax_expand,
    movement_fraction,
)
from repro.core.optimal import optimal_response_time, optimal_response_times
from repro.core.proximity import (
    center_distance,
    proximity_index,
    proximity_matrix,
)
from repro.core.registry import (
    REGISTRY,
    MethodSpec,
    SchemeEntry,
    available_methods,
    default_method_slate,
    make_method,
    register_scheme,
)
from repro.core.scalable import (
    ProximityGraph,
    ScalableMinimax,
    bulk_assign,
    knn_graph,
    scalable_minimax_partition,
    sfc_order,
)
from repro.core.ssp import ShortSpanningPath

__all__ = [
    "DeclusteringMethod",
    "IndexBasedMethod",
    "DiskModulo",
    "GeneralizedDiskModulo",
    "FieldwiseXor",
    "HCAM",
    "KLRefine",
    "LatinSquare",
    "OnionScheme",
    "Minimax",
    "ScalableMinimax",
    "ProximityGraph",
    "knn_graph",
    "sfc_order",
    "scalable_minimax_partition",
    "bulk_assign",
    "ShortSpanningPath",
    "MSTDecluster",
    "RandomDecluster",
    "RandomBalanced",
    "WorkloadTuned",
    "minimax_expand",
    "movement_fraction",
    "bounded_reconcile",
    "min_proximity_steal",
    "PlacementPolicy",
    "RoundRobinLeastLoaded",
    "ProximitySteal",
    "RecomputeOnThreshold",
    "PLACEMENT_POLICIES",
    "make_placement",
    "recommend",
    "Recommendation",
    "exact_optimal_assignment",
    "CONFLICT_HEURISTICS",
    "resolve_random",
    "resolve_most_frequent",
    "resolve_data_balance",
    "resolve_area_balance",
    "proximity_index",
    "proximity_matrix",
    "center_distance",
    "optimal_response_time",
    "optimal_response_times",
    "available_methods",
    "default_method_slate",
    "make_method",
    "MethodSpec",
    "SchemeEntry",
    "REGISTRY",
    "register_scheme",
    "validate_assignment",
]
