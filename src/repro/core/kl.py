"""Kernighan–Lin-style max-cut refinement for declustering.

The paper (§3.1) discusses the Kernighan–Lin partitioning algorithm as an
alternative to minimax: it handles weighted edges but is multi-pass with
O(N² · p) cost and no bound on the number of passes p, and Liu & Shekhar's
similarity-graph method uses it for the initial partition.  We implement the
declustering-flavoured variant as a *refinement* operator:

* start from any balanced base assignment (SSP by default);
* repeatedly sweep all partition pairs looking for the vertex swap that most
  reduces the total *intra-partition* co-access weight (equivalently,
  maximizes the cut) — swapping preserves partition sizes exactly;
* stop when a sweep finds no improving swap or after ``passes`` sweeps.

The swap gain for ``a ∈ A``, ``b ∈ B`` under weight matrix ``W`` is::

    gain(a, b) = E_A(a) - E_B(a) + E_B(b) - E_A(b) + 2·W[a, b]

with ``E_P(v) = Σ_{u ∈ P} W[v, u]``.  The sweep is vectorized per partition
pair, so a full pass costs one O(N²) block scan.

This both reproduces the paper's discussion (KL terminates only heuristically
— the ``passes`` cap is doing real work) and provides an upper-bound
reference: how much response time is left on the table by one-shot
constructions like SSP and minimax.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.core.base import DeclusteringMethod, validate_assignment
from repro.core.proximity import proximity_matrix
from repro.core.registry import make_method
from repro.gridfile.gridfile import GridFile

__all__ = ["KLRefine", "kl_refine"]


def kl_refine(
    weights: np.ndarray,
    assignment: np.ndarray,
    n_disks: int,
    passes: int = 4,
) -> tuple[np.ndarray, int]:
    """Refine an assignment by greedy best-swap sweeps.

    Parameters
    ----------
    weights:
        Symmetric ``(n, n)`` co-access weight matrix (diagonal ignored).
    assignment:
        Initial ``(n,)`` disk ids; partition sizes are preserved.
    n_disks:
        Number of disks M.
    passes:
        Maximum number of full sweeps (the paper's unbounded ``p``, capped).

    Returns
    -------
    (assignment, n_swaps):
        The refined assignment (a copy) and the number of swaps applied.
    """
    w = np.asarray(weights, dtype=np.float64).copy()
    n = w.shape[0]
    if w.shape != (n, n):
        raise ValueError("weights must be square")
    np.fill_diagonal(w, 0.0)
    check_positive_int(n_disks, "n_disks")
    check_positive_int(passes, "passes")
    out = np.asarray(assignment, dtype=np.int64).copy()
    if out.shape != (n,):
        raise ValueError(f"assignment must have shape ({n},)")

    members = [np.nonzero(out == p)[0] for p in range(n_disks)]
    # E[v, p] = total weight from v into partition p.
    e = np.stack([w[:, m].sum(axis=1) for m in members], axis=1)

    total_swaps = 0
    for _ in range(passes):
        improved = False
        for pa in range(n_disks):
            for pb in range(pa + 1, n_disks):
                while True:
                    a_idx = members[pa]
                    b_idx = members[pb]
                    if a_idx.size == 0 or b_idx.size == 0:
                        break
                    alpha = e[a_idx, pa] - e[a_idx, pb]
                    beta = e[b_idx, pb] - e[b_idx, pa]
                    gains = alpha[:, None] + beta[None, :] + 2.0 * w[np.ix_(a_idx, b_idx)]
                    i, j = np.unravel_index(np.argmax(gains), gains.shape)
                    if gains[i, j] <= 1e-12:
                        break
                    a, b = int(a_idx[i]), int(b_idx[j])
                    # Apply the swap and update E incrementally.
                    out[a], out[b] = pb, pa
                    e[:, pa] += w[:, b] - w[:, a]
                    e[:, pb] += w[:, a] - w[:, b]
                    members[pa] = np.concatenate([a_idx[a_idx != a], [b]])
                    members[pb] = np.concatenate([b_idx[b_idx != b], [a]])
                    total_swaps += 1
                    improved = True
        if not improved:
            break
    return out, total_swaps


class KLRefine(DeclusteringMethod):
    """Kernighan–Lin max-cut refinement on top of a base declustering.

    Parameters
    ----------
    base:
        Spec string of the base method providing the initial balanced
        assignment (default ``"ssp"``).
    passes:
        Maximum refinement sweeps (default 4; the paper notes p is usually
        low but unbounded).
    """

    def __init__(self, base: str = "ssp", passes: int = 4):
        self.base = make_method(base)
        self.passes = check_positive_int(passes, "passes")
        self.name = f"KL({self.base.name})"

    def assign(self, gf: GridFile, n_disks: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        initial = self.base.assign(gf, n_disks, rng=rng)
        nonempty = gf.nonempty_bucket_ids()
        if nonempty.size == 0:
            return initial
        lo, hi = gf.bucket_regions()
        w = proximity_matrix(lo[nonempty], hi[nonempty], gf.scales.lengths)
        refined, _ = kl_refine(w, initial[nonempty], n_disks, self.passes)
        out = initial.copy()
        out[nonempty] = refined
        return validate_assignment(out, gf.n_buckets, n_disks)
