"""Workload-tuned declustering by local search.

All the paper's algorithms are *workload-oblivious*: they place buckets from
geometry alone.  When a representative query workload is available, a direct
hill-climb on the actual objective — the summed response time
``Σ_q max_i N_i(q)`` — gives an empirical near-optimal reference that is
much tighter than the ``⌈buckets/M⌉`` bound.  The gap between minimax and
this reference quantifies how much the proximity heuristic leaves on the
table (``benchmarks/bench_ext_workload_tuned.py``).

The search starts from a base assignment (minimax by default) and repeatedly
moves single buckets between disks whenever the move strictly reduces the
summed response over the training workload, subject to a balance constraint
(``≤ ⌈N/M⌉ + slack`` non-empty buckets per disk).  Per-query per-disk counts
are maintained incrementally, so one full sweep costs
``O(N · M · avg_queries_per_bucket)``.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.core.base import DeclusteringMethod, validate_assignment
from repro.core.registry import make_method
from repro.gridfile.gridfile import GridFile
from repro.sim.diskmodel import query_buckets

__all__ = ["WorkloadTuned", "tune_assignment"]


def tune_assignment(
    bucket_lists,
    assignment: np.ndarray,
    n_disks: int,
    sizes: "np.ndarray | None" = None,
    balance_slack: int = 1,
    max_passes: int = 10,
) -> tuple[np.ndarray, int]:
    """Hill-climb an assignment against a concrete workload.

    Parameters
    ----------
    bucket_lists:
        Per-query arrays of (non-empty) bucket ids (the output of
        :func:`repro.sim.diskmodel.query_buckets`).
    assignment:
        Initial ``(n_buckets,)`` disk ids.
    n_disks:
        Number of disks M.
    sizes:
        Per-bucket record counts; empty buckets are ignored by the balance
        constraint (they occupy no disk page).
    balance_slack:
        Allowed excess over ``⌈N/M⌉`` non-empty buckets per disk.
    max_passes:
        Sweep cap.

    Returns
    -------
    (assignment, n_moves):
        The tuned assignment (copy) and the number of moves applied.
    """
    check_positive_int(n_disks, "n_disks")
    if balance_slack < 0:
        raise ValueError("balance_slack must be >= 0")
    check_positive_int(max_passes, "max_passes")
    out = np.asarray(assignment, dtype=np.int64).copy()
    n_buckets = out.shape[0]
    if sizes is None:
        sizes = np.ones(n_buckets, dtype=np.int64)
    sizes = np.asarray(sizes)

    # Inverted index: bucket -> queries that touch it.
    queries_of: list[list[int]] = [[] for _ in range(n_buckets)]
    bucket_lists = [np.asarray(bl, dtype=np.int64) for bl in bucket_lists]
    for qi, bl in enumerate(bucket_lists):
        for b in bl:
            queries_of[int(b)].append(qi)

    # Per-query per-disk counts.
    counts = np.zeros((len(bucket_lists), n_disks), dtype=np.int64)
    for qi, bl in enumerate(bucket_lists):
        if bl.size:
            counts[qi] = np.bincount(out[bl], minlength=n_disks)

    nonempty = sizes > 0
    load = np.bincount(out[nonempty], minlength=n_disks)
    cap = -(-int(nonempty.sum()) // n_disks) + balance_slack

    touched_buckets = [b for b in range(n_buckets) if queries_of[b]]
    n_moves = 0
    for _ in range(max_passes):
        improved = False
        for b in touched_buckets:
            src = int(out[b])
            qs = queries_of[b]
            rows = counts[qs]
            current = rows.max(axis=1).sum()
            best_gain = 0
            best_dst = -1
            for dst in range(n_disks):
                if dst == src:
                    continue
                if nonempty[b] and load[dst] + 1 > cap:
                    continue
                trial = rows.copy()
                trial[:, src] -= 1
                trial[:, dst] += 1
                gain = current - trial.max(axis=1).sum()
                if gain > best_gain:
                    best_gain = gain
                    best_dst = dst
            if best_dst >= 0:
                counts[qs, src] -= 1
                counts[qs, best_dst] += 1
                if nonempty[b]:
                    load[src] -= 1
                    load[best_dst] += 1
                out[b] = best_dst
                n_moves += 1
                improved = True
        if not improved:
            break
    return out, n_moves


class WorkloadTuned(DeclusteringMethod):
    """Local-search declustering tuned to a training workload.

    Parameters
    ----------
    queries:
        Training workload (list of :class:`repro.gridfile.RangeQuery`).
        Evaluation should use a *held-out* workload to measure
        generalization honestly.
    base:
        Spec of the starting assignment (default ``"minimax"``).
    balance_slack:
        Allowed excess over ``⌈N/M⌉`` buckets per disk (default 1).
    max_passes:
        Hill-climb sweep cap.
    """

    def __init__(self, queries, base: str = "minimax", balance_slack: int = 1, max_passes: int = 10):
        self.queries = list(queries)
        if not self.queries:
            raise ValueError("need a non-empty training workload")
        self.base = make_method(base)
        self.balance_slack = balance_slack
        self.max_passes = max_passes
        self.name = f"Tuned({self.base.name})"

    def assign(self, gf: GridFile, n_disks: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        initial = self.base.assign(gf, n_disks, rng=rng)
        bucket_lists = query_buckets(gf, self.queries)
        tuned, _ = tune_assignment(
            bucket_lists,
            initial,
            n_disks,
            sizes=gf.bucket_sizes(),
            balance_slack=self.balance_slack,
            max_passes=self.max_passes,
        )
        return validate_assignment(tuned, gf.n_buckets, n_disks)
