"""Random declustering baselines.

Two references that bracket the structured methods:

* :class:`RandomDecluster` — independent uniform disk per bucket.  No
  balance guarantee; its expected response time is what any structured
  method must beat to justify itself.
* :class:`RandomBalanced` — a random permutation dealt round-robin:
  perfectly balanced but ignorant of geometry.  Separates how much of a
  method's win comes from balance alone vs from spatial awareness.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.core.base import DeclusteringMethod, validate_assignment
from repro.gridfile.gridfile import GridFile

__all__ = ["RandomDecluster", "RandomBalanced"]


class RandomDecluster(DeclusteringMethod):
    """Independent uniform random disk per bucket."""

    name = "Random"

    def assign(self, gf: GridFile, n_disks: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        out = rng.integers(0, n_disks, size=gf.n_buckets, dtype=np.int64)
        return validate_assignment(out, gf.n_buckets, n_disks)


class RandomBalanced(DeclusteringMethod):
    """Random permutation of the buckets dealt round-robin to disks.

    Perfect balance (``≤ ⌈N/M⌉`` non-empty buckets per disk) with zero
    spatial structure.
    """

    name = "RandomRR"

    def assign(self, gf: GridFile, n_disks: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        out = np.zeros(gf.n_buckets, dtype=np.int64)
        nonempty = gf.nonempty_bucket_ids()
        perm = rng.permutation(nonempty.size)
        out[nonempty[perm]] = np.arange(nonempty.size) % n_disks
        empty = np.setdiff1d(np.arange(gf.n_buckets), nonempty)
        out[empty] = np.arange(empty.size) % n_disks
        return validate_assignment(out, gf.n_buckets, n_disks)
