"""Method registry: construct declustering methods from compact spec strings.

Spec grammar (case-insensitive)::

    dm | fx | hcam | gdm    index-based, default data-balance conflicts
    dm/R dm/F dm/D dm/A     explicit conflict heuristic
                            (R=random F=most-frequent D=data A=area balance)
    hcam:zorder/D           HCAM over an alternative curve
    ssp | mst | minimax     proximity/similarity-based
    minimax:euclidean       minimax with the Euclidean ablation weight
    sminimax                scalable hierarchical minimax (large-N path)
    sminimax:euclidean      ... with the Euclidean ablation weight
    kl | kl:minimax         Kernighan-Lin refinement of a base method
    random | randomrr       unstructured baselines

Used by the CLI, the experiment drivers and the benchmark harness so that a
configuration is a plain list of strings.
"""

from __future__ import annotations

from repro.core.base import DeclusteringMethod
from repro.core.diskmodulo import DiskModulo, GeneralizedDiskModulo
from repro.core.fieldwisexor import FieldwiseXor
from repro.core.hcam import HCAM
from repro.core.minimax import Minimax
from repro.core.mst import MSTDecluster
from repro.core.random_assign import RandomBalanced, RandomDecluster
from repro.core.ssp import ShortSpanningPath

__all__ = ["make_method", "available_methods"]

_CONFLICT_BY_LETTER = {
    "R": "random",
    "F": "most_frequent",
    "D": "data_balance",
    "A": "area_balance",
}


def available_methods() -> list[str]:
    """Canonical spec strings for every built-in method."""
    return [
        "dm/D",
        "fx/D",
        "hcam/D",
        "ssp",
        "mst",
        "minimax",
    ]


def make_method(spec: str) -> DeclusteringMethod:
    """Build a :class:`DeclusteringMethod` from a spec string (see module doc)."""
    spec = spec.strip()
    if not spec:
        raise ValueError("empty method spec")
    base, _, conflict_letter = spec.partition("/")
    base = base.strip()
    name, _, option = base.partition(":")
    name = name.lower()
    option = option.strip().lower()

    conflict = "data_balance"
    if conflict_letter:
        letter = conflict_letter.strip().upper()
        if letter not in _CONFLICT_BY_LETTER:
            raise ValueError(
                f"unknown conflict letter {conflict_letter!r}; use one of R F D A"
            )
        conflict = _CONFLICT_BY_LETTER[letter]

    if name == "dm":
        return DiskModulo(conflict)
    if name == "fx":
        return FieldwiseXor(conflict)
    if name == "gdm":
        return GeneralizedDiskModulo(conflict)
    if name == "hcam":
        if option:
            return HCAM(conflict, curve=option)
        return HCAM(conflict)
    if conflict_letter:
        raise ValueError(f"method {name!r} does not take a conflict heuristic")
    if name == "ssp":
        return ShortSpanningPath()
    if name == "mst":
        return MSTDecluster()
    if name == "minimax":
        if option:
            return Minimax(weight=option)
        return Minimax()
    if name == "sminimax":
        from repro.core.scalable import ScalableMinimax  # local import breaks the cycle

        if option:
            return ScalableMinimax(weight=option)
        return ScalableMinimax()
    if name == "kl":
        from repro.core.kl import KLRefine  # local import breaks the cycle

        return KLRefine(base=option) if option else KLRefine()
    if name == "random":
        return RandomDecluster()
    if name == "randomrr":
        return RandomBalanced()
    raise ValueError(f"unknown declustering method {spec!r}")
