"""Declarative method registry: spec strings -> declustering methods.

Spec grammar (case-insensitive, whitespace-tolerant)::

    spec     := name [":" option] ["/" conflict]
    name     := letter (letter | digit | "_")*
    option   := (letter | digit | "_")+
    conflict := "R" | "F" | "D" | "A"
                (R=random F=most-frequent D=data A=area balance)

Parsing produces a :class:`MethodSpec` AST node that round-trips through
``str()`` (``parse(str(s)) == s``); malformed specs raise ``ValueError``
with the offending position and context, never escape.

Every scheme is a :class:`SchemeEntry` record in :data:`REGISTRY` carrying
a *lazy* factory (the implementing module is imported only when the scheme
is actually built, so this module participates in no import cycles) plus
capability metadata: scheme kind (index-based vs proximity-based vs
unstructured baseline), whether it accepts a conflict heuristic or an
option, whether it scales past O(N²), and which theory-bound family of
:mod:`repro.theory` covers it.  :func:`available_methods` and every error
message are derived from the registry, so they can never drift from it.

Built-in schemes::

    dm | fx | gdm | hcam | lsq | onion   index-based (take "/R /F /D /A")
    hcam:zorder/D                        HCAM over an alternative curve
    lsq                                  DHW latin-square (good-lattice) scheme
    onion                                round robin along the Onion curve
    ssp | mst | minimax                  proximity/similarity-based
    minimax:euclidean                    minimax with the Euclidean weight
    sminimax[:euclidean]                 scalable hierarchical minimax
    kl | kl:minimax                      Kernighan-Lin refinement of a base
    random | randomrr                    unstructured baselines

Used by the CLI, the experiment drivers, the SQL engine and the benchmark
harness so that a configuration is a plain list of strings.
"""

from __future__ import annotations

import importlib
import re
from dataclasses import dataclass, field

__all__ = [
    "MethodSpec",
    "SchemeEntry",
    "REGISTRY",
    "register_scheme",
    "make_method",
    "available_methods",
    "default_method_slate",
]

_CONFLICT_BY_LETTER = {
    "R": "random",
    "F": "most_frequent",
    "D": "data_balance",
    "A": "area_balance",
}

_NAME_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*")
_OPTION_RE = re.compile(r"[A-Za-z0-9_]+")


@dataclass(frozen=True)
class MethodSpec:
    """Parsed form of one method spec string (``name[:option][/conflict]``).

    ``name`` and ``option`` are canonically lower-case, ``conflict`` is one
    of the upper-case letters ``R F D A`` (or None when the spec carries no
    conflict suffix).  ``str()`` renders the canonical spec string and
    ``parse(str(spec)) == spec`` holds for every valid spec.
    """

    name: str
    option: "str | None" = None
    conflict: "str | None" = None

    def __str__(self) -> str:
        out = self.name
        if self.option is not None:
            out += f":{self.option}"
        if self.conflict is not None:
            out += f"/{self.conflict}"
        return out

    @property
    def conflict_name(self) -> "str | None":
        """Full conflict-heuristic name for the letter (None if absent)."""
        return _CONFLICT_BY_LETTER[self.conflict] if self.conflict else None

    @classmethod
    def parse(cls, text: str) -> "MethodSpec":
        """Parse a spec string, raising ``ValueError`` with position/context.

        Whitespace around tokens is tolerated and case is normalized, so
        ``" DM :ZOrder / d "`` parses to ``dm:zorder/D``.
        """
        if not isinstance(text, str):
            raise TypeError(f"method spec must be a string, got {type(text).__name__}")
        s = text.strip()
        if not s:
            raise ValueError("empty method spec")

        def err(pos: int, msg: str) -> "ValueError":
            return ValueError(
                f"bad method spec {text!r}: {msg} at position {pos} "
                f"(grammar: name[:option][/conflict])"
            )

        def skip_ws(i: int) -> int:
            while i < len(s) and s[i].isspace():
                i += 1
            return i

        i = 0
        m = _NAME_RE.match(s, i)
        if not m:
            raise err(i, f"expected a method name, found {s[i:i + 8]!r}")
        name = m.group().lower()
        i = skip_ws(m.end())

        option = None
        if i < len(s) and s[i] == ":":
            i = skip_ws(i + 1)
            m = _OPTION_RE.match(s, i)
            if not m:
                raise err(i, "expected an option after ':'")
            option = m.group().lower()
            i = skip_ws(m.end())

        conflict = None
        if i < len(s) and s[i] == "/":
            i = skip_ws(i + 1)
            if i >= len(s):
                raise err(i, "expected a conflict letter after '/'")
            letter = s[i].upper()
            if letter not in _CONFLICT_BY_LETTER:
                raise err(
                    i, f"unknown conflict letter {s[i]!r}; use one of R F D A"
                )
            conflict = letter
            i = skip_ws(i + 1)

        if i < len(s):
            raise err(i, f"unexpected trailing text {s[i:]!r}")
        return cls(name=name, option=option, conflict=conflict)


def _load(module: str, attr: str):
    """Import ``module`` lazily and fetch ``attr`` — the factory seam that
    keeps this module free of compile-time dependencies on scheme modules
    (and therefore free of the old ``sminimax``/``kl`` import cycles)."""
    return getattr(importlib.import_module(module), attr)


@dataclass(frozen=True)
class SchemeEntry:
    """One registered declustering scheme plus its capability metadata.

    Parameters
    ----------
    name:
        Canonical spec name (the grammar's ``name`` token).
    summary:
        One-line description for listings and docs.
    kind:
        ``"index"`` (per-cell function lifted through conflict resolution),
        ``"proximity"`` (works on bucket regions directly) or ``"baseline"``
        (unstructured reference).
    factory:
        ``factory(spec: MethodSpec) -> DeclusteringMethod``; imports the
        implementing module lazily.
    accepts_conflict:
        Whether ``/R /F /D /A`` suffixes are legal (index-based schemes).
    option_name:
        What the ``:option`` token means (``"curve"``, ``"weight"``,
        ``"base"``) or None when the scheme takes no option.
    option_values:
        Enumerable option values for listings (None = free-form or no
        option).  May be a callable for lazily-resolved value sets.
    scalable:
        Whether the scheme stays practical far past O(N²) bucket counts.
    bound_family:
        The :mod:`repro.theory` additive-error bound family covering the
        scheme (``"dm"``, ``"fx"``, ``"dhw"``, ``"curve_runs"``) or None.
    in_default_slate:
        Whether the scheme belongs to the canonical paper slate used by the
        method advisor and the quick-start examples.
    """

    name: str
    summary: str
    kind: str
    factory: "object" = field(repr=False, default=None)
    accepts_conflict: bool = False
    option_name: "str | None" = None
    option_values: "object" = None
    scalable: bool = False
    bound_family: "str | None" = None
    in_default_slate: bool = False

    def options(self) -> "tuple[str, ...]":
        """Enumerable option values (empty when free-form or option-less)."""
        values = self.option_values
        if values is None:
            return ()
        if callable(values):
            values = values()
        return tuple(values)

    def default_spec(self) -> str:
        """Canonical spec string selecting this scheme with its defaults."""
        return f"{self.name}/D" if self.accepts_conflict else self.name


#: Name -> entry, in registration (presentation) order.
REGISTRY: "dict[str, SchemeEntry]" = {}


def register_scheme(entry: SchemeEntry) -> SchemeEntry:
    """Add ``entry`` to :data:`REGISTRY` (rejects duplicate names)."""
    if entry.name in REGISTRY:
        raise ValueError(f"scheme {entry.name!r} is already registered")
    if entry.kind not in ("index", "proximity", "baseline"):
        raise ValueError(f"unknown scheme kind {entry.kind!r}")
    REGISTRY[entry.name] = entry
    return entry


# --------------------------------------------------------------- factories
def _conflict(spec: MethodSpec) -> str:
    return spec.conflict_name or "data_balance"


def _dm_factory(spec):
    return _load("repro.core.diskmodulo", "DiskModulo")(_conflict(spec))


def _gdm_factory(spec):
    return _load("repro.core.diskmodulo", "GeneralizedDiskModulo")(_conflict(spec))


def _fx_factory(spec):
    return _load("repro.core.fieldwisexor", "FieldwiseXor")(_conflict(spec))


def _hcam_factory(spec):
    cls = _load("repro.core.hcam", "HCAM")
    if spec.option:
        return cls(_conflict(spec), curve=spec.option)
    return cls(_conflict(spec))


def _lsq_factory(spec):
    return _load("repro.core.latinsquare", "LatinSquare")(_conflict(spec))


def _onion_factory(spec):
    return _load("repro.core.onion", "OnionScheme")(_conflict(spec))


def _ssp_factory(spec):
    return _load("repro.core.ssp", "ShortSpanningPath")()


def _mst_factory(spec):
    return _load("repro.core.mst", "MSTDecluster")()


def _minimax_factory(spec):
    cls = _load("repro.core.minimax", "Minimax")
    return cls(weight=spec.option) if spec.option else cls()


def _sminimax_factory(spec):
    cls = _load("repro.core.scalable", "ScalableMinimax")
    return cls(weight=spec.option) if spec.option else cls()


def _kl_factory(spec):
    cls = _load("repro.core.kl", "KLRefine")
    return cls(base=spec.option) if spec.option else cls()


def _random_factory(spec):
    return _load("repro.core.random_assign", "RandomDecluster")()


def _randomrr_factory(spec):
    return _load("repro.core.random_assign", "RandomBalanced")()


def _curve_names() -> "tuple[str, ...]":
    return tuple(sorted(_load("repro.sfc", "CURVES")))


# ---------------------------------------------------------------- entries
register_scheme(SchemeEntry(
    name="dm",
    summary="Disk Modulo: disk = (i_1 + ... + i_d) mod M",
    kind="index",
    factory=_dm_factory,
    accepts_conflict=True,
    scalable=True,
    bound_family="dm",
    in_default_slate=True,
))
register_scheme(SchemeEntry(
    name="fx",
    summary="Fieldwise XOR: disk = (i_1 XOR ... XOR i_d) mod M",
    kind="index",
    factory=_fx_factory,
    accepts_conflict=True,
    scalable=True,
    bound_family="fx",
    in_default_slate=True,
))
register_scheme(SchemeEntry(
    name="gdm",
    summary="Generalized Disk Modulo: disk = (sum c_k * i_k) mod M",
    kind="index",
    factory=_gdm_factory,
    accepts_conflict=True,
    scalable=True,
))
register_scheme(SchemeEntry(
    name="hcam",
    summary="Round robin along a space-filling curve (default Hilbert)",
    kind="index",
    factory=_hcam_factory,
    accepts_conflict=True,
    option_name="curve",
    option_values=_curve_names,
    scalable=True,
    bound_family="curve_runs",
    in_default_slate=True,
))
register_scheme(SchemeEntry(
    name="lsq",
    summary="DHW latin-square scheme: good-lattice multipliers, "
            "discrepancy-bounded additive error",
    kind="index",
    factory=_lsq_factory,
    accepts_conflict=True,
    scalable=True,
    bound_family="dhw",
))
register_scheme(SchemeEntry(
    name="onion",
    summary="Round robin along the Onion curve (near-optimal clustering)",
    kind="index",
    factory=_onion_factory,
    accepts_conflict=True,
    scalable=True,
    bound_family="curve_runs",
))
register_scheme(SchemeEntry(
    name="ssp",
    summary="Short Spanning Path similarity baseline (Fang et al.)",
    kind="proximity",
    factory=_ssp_factory,
    in_default_slate=True,
))
register_scheme(SchemeEntry(
    name="mst",
    summary="Minimum-spanning-tree similarity baseline (Fang et al.)",
    kind="proximity",
    factory=_mst_factory,
    in_default_slate=True,
))
register_scheme(SchemeEntry(
    name="minimax",
    summary="The paper's minimax spanning-tree algorithm (O(N^2))",
    kind="proximity",
    factory=_minimax_factory,
    option_name="weight",
    option_values=("euclidean",),
    in_default_slate=True,
))
register_scheme(SchemeEntry(
    name="sminimax",
    summary="Scalable hierarchical minimax (sparse k-NN graph, large N)",
    kind="proximity",
    factory=_sminimax_factory,
    option_name="weight",
    option_values=("euclidean",),
    scalable=True,
))
register_scheme(SchemeEntry(
    name="kl",
    summary="Kernighan-Lin max-cut refinement of a base method",
    kind="proximity",
    factory=_kl_factory,
    option_name="base",
    option_values=("minimax",),
))
register_scheme(SchemeEntry(
    name="random",
    summary="Uniform random assignment (unstructured baseline)",
    kind="baseline",
    factory=_random_factory,
))
register_scheme(SchemeEntry(
    name="randomrr",
    summary="Random balanced (shuffled round robin) baseline",
    kind="baseline",
    factory=_randomrr_factory,
))


# ------------------------------------------------------------ public API
def make_method(spec: "str | MethodSpec"):
    """Build a :class:`~repro.core.base.DeclusteringMethod` from a spec.

    Accepts a spec string (see module doc for the grammar) or an
    already-parsed :class:`MethodSpec`.  Raises ``ValueError`` naming every
    registered scheme for unknown names, and rejecting conflict/option
    tokens on schemes whose registry entry does not accept them.
    """
    if isinstance(spec, str):
        spec = MethodSpec.parse(spec)
    entry = REGISTRY.get(spec.name)
    if entry is None:
        raise ValueError(
            f"unknown declustering method {spec.name!r}; "
            f"choose from {sorted(REGISTRY)}"
        )
    if spec.conflict is not None and not entry.accepts_conflict:
        raise ValueError(
            f"method {spec.name!r} does not take a conflict heuristic"
        )
    if spec.option is not None and entry.option_name is None:
        raise ValueError(
            f"method {spec.name!r} does not take a ':{spec.option}' option"
        )
    return entry.factory(spec)


def available_methods() -> "list[str]":
    """Canonical spec strings for **every** registered scheme and variant.

    Derived from :data:`REGISTRY`, so it can never drift from what
    :func:`make_method` accepts: for each scheme the conflict variants (if
    the scheme accepts a conflict heuristic) and each enumerable option
    with the default conflict.  Every returned spec is constructible.
    """
    out: "list[str]" = []
    for entry in REGISTRY.values():
        if entry.accepts_conflict:
            out.extend(f"{entry.name}/{letter}" for letter in "RFDA")
        else:
            out.append(entry.name)
        default = _default_option(entry)
        for opt in entry.options():
            if opt == default:
                continue
            spec = MethodSpec(entry.name, opt, "D" if entry.accepts_conflict else None)
            out.append(str(spec))
    return out


def _default_option(entry: SchemeEntry) -> "str | None":
    """The option value the bare spec already selects (skip in listings)."""
    if entry.name == "hcam":
        return "hilbert"
    return None


def default_method_slate() -> "list[str]":
    """The canonical paper slate (advisor candidates, quick-start examples).

    Derived from the registry's ``in_default_slate`` flag; matches the
    pre-refactor ``available_methods()`` output.
    """
    return [e.default_spec() for e in REGISTRY.values() if e.in_default_slate]
