"""The minimax spanning-tree declustering algorithm (paper §3.1, Algorithm 2).

The grid-file declustering problem is viewed as an M-way partitioning of the
complete graph on buckets, edges weighted by the probability of co-access
(the proximity index).  The algorithm extends Prim's MST construction:

1. **Random seeding** — M distinct buckets seed M spanning trees.
2. **Expanding** — trees take turns (round robin).  The tree whose turn it
   is receives the unassigned bucket whose *maximum* edge weight to the
   tree's current members is *minimum* — the bucket least likely to be
   co-accessed with anything already on that disk.

Properties (paper §3.1, verified by the test suite):

* O(N²) weight evaluations for N buckets;
* perfectly balanced partitions: every disk gets at most ``⌈N/M⌉`` buckets;
* nearest-neighbour buckets land on the same disk only rarely (Tables 2–3).

The inner loop is vectorized: per step one argmin over the frontier and one
one-vs-all proximity row, both numpy array passes, so declustering the
paper's 19 956-bucket 4-d file stays in seconds.
"""

from __future__ import annotations

import os

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.core.base import DeclusteringMethod, validate_assignment
from repro.core.proximity import euclidean_similarity, pairwise_rows, proximity_index
from repro.gridfile.gridfile import GridFile
from repro.obs import GLOBAL_METRICS, PROFILER

__all__ = ["Minimax", "minimax_partition", "resolve_cache_bytes", "CACHE_BYTES_ENV"]

_WEIGHTS = {"proximity": proximity_index, "euclidean": euclidean_similarity}

#: Default memory cap for the precomputed pairwise weight matrix (bytes).
#: 256 MiB holds the full matrix for ~5,800 buckets — comfortably above the
#: paper's 2-d/3-d files, well below its 19,956-bucket 4-d file.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

#: Environment variable overriding the default weight-matrix cache cap.
CACHE_BYTES_ENV = "REPRO_MINIMAX_CACHE_BYTES"


def resolve_cache_bytes(cache_bytes: "int | None") -> int:
    """Resolve the weight-matrix cache cap: explicit arg > env > default.

    ``None`` consults the ``REPRO_MINIMAX_CACHE_BYTES`` environment knob
    (an integer byte count; ``0`` disables the cache entirely) and falls
    back to :data:`DEFAULT_CACHE_BYTES`.  Raises ``ValueError`` on a
    malformed or negative knob value.
    """
    if cache_bytes is not None:
        cache_bytes = int(cache_bytes)
        if cache_bytes < 0:
            raise ValueError(f"cache_bytes must be >= 0, got {cache_bytes}")
        return cache_bytes
    raw = os.environ.get(CACHE_BYTES_ENV)
    if raw is None or raw.strip() == "":
        return DEFAULT_CACHE_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{CACHE_BYTES_ENV} must be an integer byte count, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"{CACHE_BYTES_ENV} must be >= 0, got {value}")
    return value

#: Target size of the (block, n, d) broadcast temporaries while filling the
#: cache — small enough to stay in L2/L3 (large blocks thrash memory and are
#: measurably slower), large enough to amortize dispatch overhead.
_CACHE_BLOCK_BYTES = 4 * 1024 * 1024


def _weight_cache(weight_fn, lo, hi, lengths, cache_bytes: int) -> "np.ndarray | None":
    """Blockwise-precomputed pairwise weight matrix, or ``None`` over the cap.

    Rows are bit-for-bit identical to the streamed one-vs-all computation,
    so reading cached rows cannot change any partition.
    """
    n = lo.shape[0]
    if n == 0 or n * n * 8 > cache_bytes:
        return None
    d = lo.shape[1]
    block = max(1, _CACHE_BLOCK_BYTES // max(1, n * d * 8))
    return pairwise_rows(weight_fn, lo, hi, lengths, block)


def _farthest_point_seeds(lo, hi, lengths, m, rng) -> np.ndarray:
    """Greedy max-min (k-center) seeding: spread seeds across the domain."""
    n = lo.shape[0]
    seeds = [int(rng.integers(n))]
    # Track, for each bucket, the max similarity to any chosen seed (lower =
    # farther); pick the bucket minimizing it.
    best_sim = proximity_index(lo[seeds[0]], hi[seeds[0]], lo, hi, lengths)
    for _ in range(m - 1):
        best_sim[seeds] = np.inf
        nxt = int(np.argmin(best_sim))
        seeds.append(nxt)
        sim = proximity_index(lo[nxt], hi[nxt], lo, hi, lengths)
        np.maximum(best_sim, sim, out=best_sim)
    return np.asarray(seeds, dtype=np.int64)


def minimax_partition(
    lo: np.ndarray,
    hi: np.ndarray,
    lengths: np.ndarray,
    n_disks: int,
    rng=None,
    weight: str = "proximity",
    seeding: str = "random",
    seeds: "np.ndarray | None" = None,
    precompute: "bool | str" = "auto",
    cache_bytes: "int | None" = None,
    rows: "np.ndarray | None" = None,
) -> np.ndarray:
    """Partition ``n`` boxes over ``n_disks`` with Algorithm 2.

    Parameters
    ----------
    lo, hi:
        ``(n, d)`` box bounds (bucket regions in domain coordinates).
    lengths:
        Domain extent per dimension.
    n_disks:
        Number of disks ``M`` (``<= n``).
    rng:
        Seed / generator for the seeding phase.
    weight:
        Edge-weight function: ``"proximity"`` (paper) or ``"euclidean"``
        (ablation).
    seeding:
        ``"random"`` (paper) or ``"farthest"`` (greedy max-min ablation).
    seeds:
        Explicit seed bucket indices (length ``n_disks``, distinct);
        overrides ``seeding``.  Used by tests to compare against reference
        implementations step by step.
    precompute:
        ``"auto"`` (default): blockwise-precompute the full pairwise weight
        matrix when it fits under ``cache_bytes``, so the O(N²) expansion
        reads cached rows instead of re-materializing one row per step.
        ``True`` forces precomputation, ``False`` always streams rows.  The
        result is bit-for-bit identical either way.
    cache_bytes:
        Memory cap (bytes) for the precomputed matrix under ``"auto"``;
        ``None`` (default) consults the ``REPRO_MINIMAX_CACHE_BYTES``
        environment knob and falls back to :data:`DEFAULT_CACHE_BYTES`.
    rows:
        Optional externally precomputed ``(n, n)`` pairwise weight matrix
        (e.g. shared across the disk counts of a sweep); takes precedence
        over ``precompute``.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` disk ids; each disk receives at most ``⌈n/M⌉`` boxes.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    n = lo.shape[0]
    m = check_positive_int(n_disks, "n_disks")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if m > n:
        # Degenerate but convenient: every box on its own disk.
        return np.arange(n, dtype=np.int64)
    if weight not in _WEIGHTS:
        raise ValueError(f"unknown weight {weight!r}; choose from {sorted(_WEIGHTS)}")
    weight_fn = _WEIGHTS[weight]
    rng = as_rng(rng)

    if precompute not in (True, False, "auto"):
        raise ValueError(f"precompute must be True, False or 'auto', got {precompute!r}")
    cache = rows
    if cache is not None:
        if cache.shape != (n, n):
            raise ValueError(f"rows must have shape ({n}, {n}), got {cache.shape}")
    elif precompute is True:
        block = max(1, _CACHE_BLOCK_BYTES // max(1, n * lo.shape[1] * 8))
        with PROFILER.phase("minimax.weights"):
            cache = pairwise_rows(weight_fn, lo, hi, lengths, block)
    elif precompute == "auto":
        with PROFILER.phase("minimax.weights"):
            cache = _weight_cache(weight_fn, lo, hi, lengths, resolve_cache_bytes(cache_bytes))

    cache_hits = GLOBAL_METRICS.counter("minimax.cache.hits")
    cache_misses = GLOBAL_METRICS.counter("minimax.cache.misses")
    weight_rows = GLOBAL_METRICS.counter("minimax.weight_rows")

    def weight_row(y: int) -> np.ndarray:
        if cache is not None:
            cache_hits.inc()
            return cache[y]
        cache_misses.inc()
        weight_rows.inc()
        return weight_fn(lo[y], hi[y], lo, hi, lengths)

    # Phase 1: seeding.
    if seeds is not None:
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.shape != (m,) or len(np.unique(seeds)) != m:
            raise ValueError(f"seeds must be {m} distinct indices")
    elif seeding == "random":
        seeds = rng.choice(n, size=m, replace=False).astype(np.int64)
    elif seeding == "farthest":
        seeds = _farthest_point_seeds(lo, hi, lengths, m, rng)
    else:
        raise ValueError(f"unknown seeding {seeding!r}")

    assign = np.full(n, -1, dtype=np.int64)
    assign[seeds] = np.arange(m)
    unassigned = np.ones(n, dtype=bool)
    unassigned[seeds] = False

    # MAX_x(K): max edge weight from bucket x to members of tree K.
    max_w = np.empty((n, m), dtype=np.float64)
    for k in range(m):
        max_w[:, k] = weight_row(int(seeds[k]))
    max_w[~unassigned, :] = np.inf  # never re-select assigned buckets

    # Phase 2: round-robin expansion.
    GLOBAL_METRICS.counter("minimax.growth_steps").inc(n - m)
    with PROFILER.phase("minimax.partition"):
        k = 0
        for _ in range(n - m):
            y = int(np.argmin(max_w[:, k]))
            assign[y] = k
            unassigned[y] = False
            row = weight_row(y)
            np.maximum(max_w[:, k], row, out=max_w[:, k])
            max_w[y, :] = np.inf
            k = (k + 1) % m
    return assign


class Minimax(DeclusteringMethod):
    """Minimax spanning-tree declustering (the paper's proposed algorithm).

    Parameters
    ----------
    weight:
        Edge-weight function, ``"proximity"`` (default, the paper's choice)
        or ``"euclidean"``.
    seeding:
        Seed placement, ``"random"`` (default) or ``"farthest"``.
    precompute:
        Row-cache policy passed to :func:`minimax_partition` — ``"auto"``
        (default) precomputes the pairwise weight matrix blockwise when it
        fits under ``cache_bytes``; assignments are identical either way.
    cache_bytes:
        Memory cap for the row cache (bytes); ``None`` (default) consults
        the ``REPRO_MINIMAX_CACHE_BYTES`` environment knob.

    Notes
    -----
    Empty buckets occupy no disk page; they are excluded from the spanning
    trees (so balance guarantees refer to data buckets) and dealt round-robin
    afterwards.
    """

    name = "MiniMax"

    def __init__(
        self,
        weight: str = "proximity",
        seeding: str = "random",
        precompute: "bool | str" = "auto",
        cache_bytes: "int | None" = None,
    ):
        if weight not in _WEIGHTS:
            raise ValueError(f"unknown weight {weight!r}")
        self.weight = weight
        self.seeding = seeding
        self.precompute = precompute
        self.cache_bytes = resolve_cache_bytes(cache_bytes)
        if weight != "proximity" or seeding != "random":
            self.name = f"MiniMax[{weight},{seeding}]"
        # Memoized (lo, hi, rows) of the last grid file declustered, so a
        # sweep over disk counts computes the O(N²) weight matrix once.
        self._rows_memo: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_rows_memo"] = None  # never ship the O(N²) cache to workers
        return state

    def _cached_rows(self, lo: np.ndarray, hi: np.ndarray, lengths) -> "np.ndarray | None":
        """Pairwise weight rows for these regions, memoized across calls."""
        if self.precompute is False:
            return None
        memo = self._rows_memo
        if memo is not None and np.array_equal(memo[0], lo) and np.array_equal(memo[1], hi):
            return memo[2]
        rows = _weight_cache(
            _WEIGHTS[self.weight],
            lo,
            hi,
            np.asarray(lengths, dtype=np.float64),
            self.cache_bytes,
        )
        self._rows_memo = None if rows is None else (lo.copy(), hi.copy(), rows)
        return rows

    def assign(self, gf: GridFile, n_disks: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        lo, hi = gf.bucket_regions()
        nonempty = gf.nonempty_bucket_ids()
        lo_ne = np.ascontiguousarray(lo[nonempty])
        hi_ne = np.ascontiguousarray(hi[nonempty])
        part = minimax_partition(
            lo_ne,
            hi_ne,
            gf.scales.lengths,
            min(n_disks, max(1, nonempty.size)),
            rng=rng,
            weight=self.weight,
            seeding=self.seeding,
            precompute=self.precompute,
            cache_bytes=self.cache_bytes,
            rows=self._cached_rows(lo_ne, hi_ne, gf.scales.lengths),
        )
        assignment = np.zeros(gf.n_buckets, dtype=np.int64)
        assignment[nonempty] = part
        empty = np.setdiff1d(np.arange(gf.n_buckets), nonempty, assume_unique=False)
        assignment[empty] = np.arange(empty.size) % n_disks
        return validate_assignment(assignment, gf.n_buckets, n_disks)
