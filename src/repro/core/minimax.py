"""The minimax spanning-tree declustering algorithm (paper §3.1, Algorithm 2).

The grid-file declustering problem is viewed as an M-way partitioning of the
complete graph on buckets, edges weighted by the probability of co-access
(the proximity index).  The algorithm extends Prim's MST construction:

1. **Random seeding** — M distinct buckets seed M spanning trees.
2. **Expanding** — trees take turns (round robin).  The tree whose turn it
   is receives the unassigned bucket whose *maximum* edge weight to the
   tree's current members is *minimum* — the bucket least likely to be
   co-accessed with anything already on that disk.

Properties (paper §3.1, verified by the test suite):

* O(N²) weight evaluations for N buckets;
* perfectly balanced partitions: every disk gets at most ``⌈N/M⌉`` buckets;
* nearest-neighbour buckets land on the same disk only rarely (Tables 2–3).

The inner loop is vectorized: per step one argmin over the frontier and one
one-vs-all proximity row, both numpy array passes, so declustering the
paper's 19 956-bucket 4-d file stays in seconds.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.core.base import DeclusteringMethod, validate_assignment
from repro.core.proximity import euclidean_similarity, proximity_index
from repro.gridfile.gridfile import GridFile

__all__ = ["Minimax", "minimax_partition"]

_WEIGHTS = {"proximity": proximity_index, "euclidean": euclidean_similarity}


def _farthest_point_seeds(lo, hi, lengths, m, rng) -> np.ndarray:
    """Greedy max-min (k-center) seeding: spread seeds across the domain."""
    n = lo.shape[0]
    seeds = [int(rng.integers(n))]
    # Track, for each bucket, the max similarity to any chosen seed (lower =
    # farther); pick the bucket minimizing it.
    best_sim = proximity_index(lo[seeds[0]], hi[seeds[0]], lo, hi, lengths)
    for _ in range(m - 1):
        best_sim[seeds] = np.inf
        nxt = int(np.argmin(best_sim))
        seeds.append(nxt)
        sim = proximity_index(lo[nxt], hi[nxt], lo, hi, lengths)
        np.maximum(best_sim, sim, out=best_sim)
    return np.asarray(seeds, dtype=np.int64)


def minimax_partition(
    lo: np.ndarray,
    hi: np.ndarray,
    lengths: np.ndarray,
    n_disks: int,
    rng=None,
    weight: str = "proximity",
    seeding: str = "random",
    seeds: "np.ndarray | None" = None,
) -> np.ndarray:
    """Partition ``n`` boxes over ``n_disks`` with Algorithm 2.

    Parameters
    ----------
    lo, hi:
        ``(n, d)`` box bounds (bucket regions in domain coordinates).
    lengths:
        Domain extent per dimension.
    n_disks:
        Number of disks ``M`` (``<= n``).
    rng:
        Seed / generator for the seeding phase.
    weight:
        Edge-weight function: ``"proximity"`` (paper) or ``"euclidean"``
        (ablation).
    seeding:
        ``"random"`` (paper) or ``"farthest"`` (greedy max-min ablation).
    seeds:
        Explicit seed bucket indices (length ``n_disks``, distinct);
        overrides ``seeding``.  Used by tests to compare against reference
        implementations step by step.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` disk ids; each disk receives at most ``⌈n/M⌉`` boxes.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    n = lo.shape[0]
    m = check_positive_int(n_disks, "n_disks")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if m > n:
        # Degenerate but convenient: every box on its own disk.
        return np.arange(n, dtype=np.int64)
    if weight not in _WEIGHTS:
        raise ValueError(f"unknown weight {weight!r}; choose from {sorted(_WEIGHTS)}")
    weight_fn = _WEIGHTS[weight]
    rng = as_rng(rng)

    # Phase 1: seeding.
    if seeds is not None:
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.shape != (m,) or len(np.unique(seeds)) != m:
            raise ValueError(f"seeds must be {m} distinct indices")
    elif seeding == "random":
        seeds = rng.choice(n, size=m, replace=False).astype(np.int64)
    elif seeding == "farthest":
        seeds = _farthest_point_seeds(lo, hi, lengths, m, rng)
    else:
        raise ValueError(f"unknown seeding {seeding!r}")

    assign = np.full(n, -1, dtype=np.int64)
    assign[seeds] = np.arange(m)
    unassigned = np.ones(n, dtype=bool)
    unassigned[seeds] = False

    # MAX_x(K): max edge weight from bucket x to members of tree K.
    max_w = np.empty((n, m), dtype=np.float64)
    for k in range(m):
        s = seeds[k]
        max_w[:, k] = weight_fn(lo[s], hi[s], lo, hi, lengths)
    max_w[~unassigned, :] = np.inf  # never re-select assigned buckets

    # Phase 2: round-robin expansion.
    k = 0
    for _ in range(n - m):
        y = int(np.argmin(max_w[:, k]))
        assign[y] = k
        unassigned[y] = False
        row = weight_fn(lo[y], hi[y], lo, hi, lengths)
        np.maximum(max_w[:, k], row, out=max_w[:, k])
        max_w[y, :] = np.inf
        k = (k + 1) % m
    return assign


class Minimax(DeclusteringMethod):
    """Minimax spanning-tree declustering (the paper's proposed algorithm).

    Parameters
    ----------
    weight:
        Edge-weight function, ``"proximity"`` (default, the paper's choice)
        or ``"euclidean"``.
    seeding:
        Seed placement, ``"random"`` (default) or ``"farthest"``.

    Notes
    -----
    Empty buckets occupy no disk page; they are excluded from the spanning
    trees (so balance guarantees refer to data buckets) and dealt round-robin
    afterwards.
    """

    name = "MiniMax"

    def __init__(self, weight: str = "proximity", seeding: str = "random"):
        if weight not in _WEIGHTS:
            raise ValueError(f"unknown weight {weight!r}")
        self.weight = weight
        self.seeding = seeding
        if weight != "proximity" or seeding != "random":
            self.name = f"MiniMax[{weight},{seeding}]"

    def assign(self, gf: GridFile, n_disks: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        lo, hi = gf.bucket_regions()
        nonempty = gf.nonempty_bucket_ids()
        part = minimax_partition(
            lo[nonempty],
            hi[nonempty],
            gf.scales.lengths,
            min(n_disks, max(1, nonempty.size)),
            rng=rng,
            weight=self.weight,
            seeding=self.seeding,
        )
        assignment = np.zeros(gf.n_buckets, dtype=np.int64)
        assignment[nonempty] = part
        empty = np.setdiff1d(np.arange(gf.n_buckets), nonempty, assume_unique=False)
        assignment[empty] = np.arange(empty.size) % n_disks
        return validate_assignment(assignment, gf.n_buckets, n_disks)
