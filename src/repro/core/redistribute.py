"""Incremental redeclustering when the disk farm grows.

The paper studies response time as a *function* of the number of disks, but
a production farm gets there by **adding** disks to a live system — and
then every bucket an algorithm maps differently must physically move.  The
two costs trade off:

* **movement** — fraction of buckets whose disk changes (bytes rewritten);
* **quality** — response time of the resulting assignment.

Recomputing an index-based scheme at the new M reshuffles almost everything
(``(i+j) mod M`` changes for ~all cells when M changes).  The other extreme
— leave everything and send only new data to the new disks — moves nothing
but keeps the old parallelism.  :func:`minimax_expand` implements the
middle path for the paper's algorithm: grow *one new minimax tree per new
disk* by stealing, round-robin, the bucket with the minimum max-proximity
to the new tree from the currently most-loaded disk, until balance is
restored.  Movement is exactly the ``(M_new - M_old)/M_new`` fraction that
any balanced expansion must move, and quality stays near a from-scratch
minimax run (``benchmarks/bench_ext_expand.py``).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.core.proximity import proximity_index

__all__ = [
    "movement_fraction",
    "minimax_expand",
    "bounded_reconcile",
    "min_proximity_steal",
]


def movement_fraction(old: np.ndarray, new: np.ndarray, sizes=None) -> float:
    """Fraction of (non-empty) buckets whose disk changes between assignments."""
    old = np.asarray(old)
    new = np.asarray(new)
    if old.shape != new.shape:
        raise ValueError("assignments must have equal shape")
    if sizes is not None:
        keep = np.asarray(sizes) > 0
        old = old[keep]
        new = new[keep]
    if old.size == 0:
        return 0.0
    return float(np.mean(old != new))


def bounded_reconcile(
    old: np.ndarray,
    new: np.ndarray,
    budget: float,
    sizes=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Move ``old`` toward ``new`` spending at most a movement budget.

    The online degradation monitor recomputes a from-scratch assignment when
    windowed response time degrades, but a live system cannot afford to
    rewrite every differing bucket at once.  This helper applies only the
    most load-relieving subset of the moves: differing buckets are taken
    greedily from the currently most-loaded disk (loads counted over
    non-empty buckets) until ``floor(budget * n_nonempty)`` buckets have
    moved.  Empty buckets (``sizes == 0``) occupy no disk page, so they are
    reassigned for free and never charged against the budget.

    Parameters
    ----------
    old, new:
        ``(n,)`` current and target assignments (same disk universe).
    budget:
        Maximum fraction of non-empty buckets allowed to move (``>= 0``).
    sizes:
        Optional ``(n,)`` record counts; ``None`` treats every bucket as
        non-empty.

    Returns
    -------
    (assignment, moved):
        The reconciled ``(n,)`` assignment and the ids of the non-empty
        buckets that moved (ascending order of application).
    """
    old = np.asarray(old, dtype=np.int64)
    new = np.asarray(new, dtype=np.int64)
    if old.shape != new.shape:
        raise ValueError("assignments must have equal shape")
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    out = old.copy()
    if out.size == 0:
        return out, np.empty(0, dtype=np.int64)
    nonempty = (
        np.ones(out.shape[0], dtype=bool) if sizes is None else np.asarray(sizes) > 0
    )
    # Empty buckets cost nothing to "move": adopt the target outright.
    out[~nonempty] = new[~nonempty]
    n_disks = int(max(out.max(), new.max())) + 1
    load = np.bincount(out[nonempty], minlength=n_disks)
    pending = set(np.nonzero(nonempty & (out != new))[0].tolist())
    allowance = int(budget * int(nonempty.sum()))
    moved: list[int] = []
    while pending and len(moved) < allowance:
        # Relieve the most-loaded disk first (ties: lowest disk, then lowest
        # bucket id — fully deterministic).
        by_disk: dict[int, int] = {}
        for b in pending:
            d = int(out[b])
            if d not in by_disk or b < by_disk[d]:
                by_disk[d] = b
        src = max(by_disk, key=lambda d: (load[d], -d))
        b = by_disk[src]
        pending.discard(b)
        load[src] -= 1
        out[b] = new[b]
        load[out[b]] += 1
        moved.append(b)
    return out, np.asarray(moved, dtype=np.int64)


def min_proximity_steal(
    lo: np.ndarray,
    hi: np.ndarray,
    lengths,
    candidates: np.ndarray,
    anchor_ids: np.ndarray,
) -> int:
    """Pick the candidate bucket with minimal max-proximity to an anchor set.

    This is Algorithm 2's tree-growing selection rule (the same one
    :func:`minimax_expand` applies per new disk), exposed for online
    placement: when a disk must give up a bucket, steal the one least
    "close" to the receiving disk's current content, so intra-disk
    proximity — and thus response time — degrades least.

    Parameters
    ----------
    lo, hi:
        ``(n, d)`` bucket regions.
    lengths:
        Domain extents.
    candidates:
        Ids of buckets eligible to move (non-empty).
    anchor_ids:
        Ids of the buckets already on the receiving disk; when empty, the
        lowest candidate id is returned.

    Returns
    -------
    int
        The chosen bucket id.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.size == 0:
        raise ValueError("no candidate buckets to steal")
    anchor_ids = np.asarray(anchor_ids, dtype=np.int64)
    if anchor_ids.size == 0:
        return int(candidates.min())
    # (n_candidates, n_anchors) proximity matrix; minimize the row maximum.
    w = proximity_index(
        lo[candidates, None, :], hi[candidates, None, :],
        lo[anchor_ids, None, :].swapaxes(0, 1), hi[anchor_ids, None, :].swapaxes(0, 1),
        lengths,
    )
    return int(candidates[int(np.argmin(w.max(axis=1)))])


def minimax_expand(
    lo: np.ndarray,
    hi: np.ndarray,
    lengths,
    assignment: np.ndarray,
    old_disks: int,
    new_disks: int,
    rng=None,
) -> np.ndarray:
    """Expand an assignment from ``old_disks`` to ``new_disks`` disks.

    For each new disk, a fresh minimax tree is seeded with a random bucket
    stolen from the most-loaded old disk, then grown by repeatedly stealing
    — always from a currently over-quota disk — the bucket whose maximum
    proximity to the new tree is minimal (Algorithm 2's selection rule,
    restricted to the new trees).  Stops when every disk holds at most
    ``⌈N/new_disks⌉`` buckets.

    Parameters
    ----------
    lo, hi:
        ``(n, d)`` bucket regions.
    lengths:
        Domain extents.
    assignment:
        Current ``(n,)`` assignment over ``old_disks``.
    old_disks, new_disks:
        Farm sizes; ``new_disks > old_disks``.
    rng:
        Seed for tie-breaking/seeding.

    Returns
    -------
    numpy.ndarray
        New ``(n,)`` assignment over ``new_disks`` disks; only stolen
        buckets moved.
    """
    check_positive_int(old_disks, "old_disks")
    check_positive_int(new_disks, "new_disks")
    if new_disks <= old_disks:
        raise ValueError("new_disks must exceed old_disks")
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    out = np.asarray(assignment, dtype=np.int64).copy()
    n = out.shape[0]
    if n == 0:
        return out
    if out.min() < 0 or out.max() >= old_disks:
        raise ValueError("assignment inconsistent with old_disks")
    rng = as_rng(rng)

    quota = -(-n // new_disks)
    load = np.bincount(out, minlength=new_disks)

    # max proximity of each bucket to each *new* tree (columns old_disks..).
    n_new = new_disks - old_disks
    max_w = np.full((n, n_new), -np.inf)

    def steal_candidates():
        over = np.nonzero(load > quota)[0]
        if over.size == 0:
            return None
        # Steal from the most loaded disk.
        src = int(over[np.argmax(load[over])])
        return np.nonzero(out == src)[0]

    # Seed each new tree from the most loaded disk.
    for t in range(n_new):
        cand = steal_candidates()
        if cand is None:
            break
        seed = int(cand[rng.integers(cand.size)])
        disk = old_disks + t
        load[out[seed]] -= 1
        out[seed] = disk
        load[disk] += 1
        max_w[:, t] = proximity_index(lo[seed], hi[seed], lo, hi, lengths)

    # Round-robin growth of the new trees.
    t = 0
    while True:
        if load[old_disks + t] >= quota:
            # This tree is full; find one that is not.
            not_full = [k for k in range(n_new) if load[old_disks + k] < quota]
            if not not_full:
                break
            t = not_full[0]
        cand = steal_candidates()
        if cand is None:
            break
        y = int(cand[np.argmin(max_w[cand, t])])
        disk = old_disks + t
        load[out[y]] -= 1
        out[y] = disk
        load[disk] += 1
        row = proximity_index(lo[y], hi[y], lo, hi, lengths)
        np.maximum(max_w[:, t], row, out=max_w[:, t])
        t = (t + 1) % n_new
    return out
