"""Bucket proximity measures.

The minimax algorithm weights bucket pairs by "the probability that they are
accessed together by a query".  Following the paper, the default surrogate
is the **proximity index** of Kamel & Faloutsos (Parallel R-trees, SIGMOD
1992), defined for d-dimensional boxes R, S as the product over dimensions of

* ``(1 + 2·δ_i) / 3``   if the projections intersect (``δ_i`` = intersection
  length / domain length), and
* ``(1 - Δ_i)² / 3``    if they are disjoint (``Δ_i`` = gap / domain length).

Both branches equal 1/3 at a touching boundary, so the index is continuous;
it lies in ``(0, 1]`` and equals 1 only for two copies of the full domain.
The Euclidean center distance is provided as the ablation alternative the
paper argues against (it ignores partial overlap of box-shaped buckets).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "proximity_index",
    "proximity_matrix",
    "pairwise_rows",
    "center_distance",
    "euclidean_similarity",
]


def _dim_factors(lo_a, hi_a, lo_b, hi_b, lengths):
    """Per-dimension proximity factors with broadcasting."""
    inter = np.minimum(hi_a, hi_b) - np.maximum(lo_a, lo_b)
    lengths = np.asarray(lengths, dtype=np.float64)
    delta = np.clip(inter, 0.0, None) / lengths
    gap = np.clip(-inter, 0.0, None) / lengths
    intersecting = inter >= 0
    return np.where(intersecting, (1.0 + 2.0 * delta) / 3.0, (1.0 - gap) ** 2 / 3.0)


def proximity_index(lo_a, hi_a, lo_b, hi_b, lengths) -> np.ndarray:
    """Proximity index between boxes, with numpy broadcasting.

    Parameters
    ----------
    lo_a, hi_a:
        First operand box(es); any shape broadcastable against the second,
        last axis = dimension.
    lo_b, hi_b:
        Second operand box(es).
    lengths:
        Domain extent per dimension (``L_k``).

    Returns
    -------
    numpy.ndarray
        Proximity values in ``(0, 1]``, shape = broadcast shape minus the
        last (dimension) axis.

    Examples
    --------
    One bucket against all others (the minimax inner loop)::

        p = proximity_index(lo[y], hi[y], lo, hi, domain_lengths)   # (n,)
    """
    lo_a = np.asarray(lo_a, dtype=np.float64)
    hi_a = np.asarray(hi_a, dtype=np.float64)
    lo_b = np.asarray(lo_b, dtype=np.float64)
    hi_b = np.asarray(hi_b, dtype=np.float64)
    factors = _dim_factors(lo_a, hi_a, lo_b, hi_b, lengths)
    return np.prod(factors, axis=-1)


def proximity_matrix(lo, hi, lengths, block_rows: "int | None" = None) -> np.ndarray:
    """Full pairwise proximity matrix of ``n`` boxes (``(n, n)``, symmetric).

    Parameters
    ----------
    lo, hi:
        ``(n, d)`` box bounds.
    lengths:
        Domain extent per dimension.
    block_rows:
        When set, the matrix is filled in row blocks of this height, keeping
        the broadcast temporaries at ``O(block_rows * n * d)`` instead of
        ``O(n² * d)``.  Entries are bit-for-bit identical either way (the
        per-element arithmetic does not depend on the blocking).

    O(n²·d) time; the minimax algorithm uses the blocked form as a row cache
    when it fits its memory cap, and streams one row at a time otherwise.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    if block_rows is None:
        return proximity_index(
            lo[:, None, :], hi[:, None, :], lo[None, :, :], hi[None, :, :], lengths
        )
    return pairwise_rows(proximity_index, lo, hi, lengths, block_rows)


def pairwise_rows(weight_fn, lo, hi, lengths, block_rows: int) -> np.ndarray:
    """Fill an ``(n, n)`` pairwise weight matrix in row blocks.

    ``weight_fn`` is any broadcasting box-pair weight (``proximity_index``,
    ``euclidean_similarity``, ...).  Row ``i`` of the result is bit-for-bit
    identical to ``weight_fn(lo[i], hi[i], lo, hi, lengths)``.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    n = lo.shape[0]
    block_rows = max(1, int(block_rows))
    out = np.empty((n, n), dtype=np.float64)
    for s in range(0, n, block_rows):
        e = min(n, s + block_rows)
        out[s:e] = weight_fn(
            lo[s:e, None, :], hi[s:e, None, :], lo[None, :, :], hi[None, :, :], lengths
        )
    return out


def center_distance(lo_a, hi_a, lo_b, hi_b, lengths=None) -> np.ndarray:
    """Euclidean distance between box centers (optionally domain-normalized)."""
    lo_a = np.asarray(lo_a, dtype=np.float64)
    hi_a = np.asarray(hi_a, dtype=np.float64)
    lo_b = np.asarray(lo_b, dtype=np.float64)
    hi_b = np.asarray(hi_b, dtype=np.float64)
    ca = (lo_a + hi_a) / 2.0
    cb = (lo_b + hi_b) / 2.0
    diff = ca - cb
    if lengths is not None:
        diff = diff / np.asarray(lengths, dtype=np.float64)
    return np.sqrt(np.sum(diff * diff, axis=-1))


def euclidean_similarity(lo_a, hi_a, lo_b, hi_b, lengths) -> np.ndarray:
    """A similarity in ``(0, 1]`` derived from normalized center distance.

    ``1 / (1 + d)`` with ``d`` the domain-normalized center distance; used as
    the drop-in edge weight for the proximity-vs-Euclidean ablation.
    """
    return 1.0 / (1.0 + center_distance(lo_a, hi_a, lo_b, hi_b, lengths))
