"""Latin-square (good-lattice) declustering scheme, after DHW.

Doerr, Hebbinghaus & Werth ("Improved bounds and schemes for the
declustering problem", TCS 2006) study declusterings built from latin
squares and lattices: the disk of cell ``(i_1, .., i_d)`` is the linear
form ``(a_1 i_1 + ... + a_d i_d) mod M``.  With multipliers forming a
*good lattice* the scheme's additive error (worst-case response minus the
ideal ``ceil(|Q|/M)``) is polylogarithmic in M — ``O((log M)^(d-1))`` —
against the known ``Omega((log M)^((d-1)/2))`` lower bound, far below the
linear-in-M error of naive schemes.

Multiplier choice follows the classical good-lattice recipe: the 2-d
multiplier ``a`` minimizes the largest partial quotient of the continued
fraction of ``a/M`` (small partial quotients == well-spread lattice; the
golden-ratio convergents are the ideal), and higher dimensions use the
Korobov form ``(1, a, a^2 mod M, ..., a^(d-1) mod M)``.

Every axis-pair restriction of the scheme to an ``M x M`` tile is a latin
square whenever ``gcd(a_k, M) = 1``, hence the name.  On a 2-d grid this
is the Generalized Disk Modulo family with a principled coefficient rule;
its additive error is measured against the DHW bound family (``"dhw"``) by
:mod:`repro.theory`.
"""

from __future__ import annotations

from functools import lru_cache
from math import gcd

import numpy as np

from repro.core.base import IndexBasedMethod

__all__ = [
    "LatinSquare",
    "max_partial_quotient",
    "best_multiplier",
    "lattice_multipliers",
]


def max_partial_quotient(a: int, m: int) -> int:
    """Largest partial quotient of the continued fraction of ``a/m``.

    Small values mean ``a/m`` is badly approximable by rationals, i.e. the
    lattice ``{(i, a*i mod m)}`` has no thin empty slabs — the classical
    quality measure for good-lattice points (the leading integer part of
    the expansion is excluded, matching the ``a < m`` convention).
    """
    if not 0 < a < m:
        raise ValueError(f"need 0 < a < m, got a={a}, m={m}")
    worst = 0
    hi, lo = m, a
    while lo:
        q, r = divmod(hi, lo)
        if q > worst:
            worst = q
        hi, lo = lo, r
    return worst


@lru_cache(maxsize=None)
def best_multiplier(m: int) -> int:
    """The unit ``a`` (``gcd(a, m) = 1``) minimizing the largest partial
    quotient of ``a/m``; ties break to the smaller ``a`` (deterministic)."""
    if m <= 2:
        return 1
    best, best_q = 1, m  # a=1 has quotient m: the worst possible lattice
    for a in range(2, m - 1):
        if gcd(a, m) != 1:
            continue
        q = max_partial_quotient(a, m)
        if q < best_q:
            best, best_q = a, q
    return best


def lattice_multipliers(m: int, dims: int) -> "tuple[int, ...]":
    """Korobov multipliers ``(1, a, a^2 mod m, ...)`` for ``dims`` axes."""
    if dims < 1:
        raise ValueError(f"dims must be >= 1, got {dims}")
    if m == 1:
        return (0,) * dims
    a = best_multiplier(m)
    return tuple(pow(a, k, m) for k in range(dims))


class LatinSquare(IndexBasedMethod):
    """DHW latin-square scheme: ``disk = (cells . multipliers) mod M``."""

    base_name = "LSQ"

    def cell_disks(self, cells: np.ndarray, n_disks: int, shape) -> np.ndarray:
        cells = np.asarray(cells, dtype=np.int64)
        mult = np.array(lattice_multipliers(n_disks, cells.shape[1]), dtype=np.int64)
        return (cells @ mult) % n_disks
