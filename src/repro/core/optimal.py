"""Optimal response time reference.

The paper's figures all include the *optimal response time*: the average
over queries of ``⌈buckets(q) / M⌉`` — what a clairvoyant declustering would
achieve if every query's buckets could be spread perfectly over the disks.
It is a lower bound that need not be feasible (a single assignment must
serve every query simultaneously).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int

__all__ = ["optimal_response_time", "optimal_response_times"]


def optimal_response_times(buckets_per_query, n_disks: int) -> np.ndarray:
    """Per-query optimal response times ``⌈n_q / M⌉``.

    Parameters
    ----------
    buckets_per_query:
        Iterable of per-query bucket counts (ints) or of bucket-id arrays.
    n_disks:
        Number of disks ``M``.
    """
    check_positive_int(n_disks, "n_disks")
    counts = np.asarray(
        [len(q) if np.ndim(q) > 0 else int(q) for q in buckets_per_query],
        dtype=np.int64,
    )
    return -(-counts // n_disks)  # ceil division


def optimal_response_time(buckets_per_query, n_disks: int) -> float:
    """Mean optimal response time over a query workload."""
    times = optimal_response_times(buckets_per_query, n_disks)
    return float(times.mean()) if times.size else 0.0
