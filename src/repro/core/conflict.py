"""Conflict-resolution heuristics for index-based declustering on grid files.

A merged bucket covers several cells, and a per-cell scheme (DM/FX/HCAM)
may map those cells to different disks — the bucket's *assignment
alternatives* ``C(b)``.  The four heuristics of paper §2.1 pick one:

* **random** — uniform choice among the distinct alternatives;
* **most frequent** — the disk occurring most often among the per-cell
  mappings (ties broken randomly);
* **data balance** (Algorithm 1) — singletons first, then each conflicted
  bucket goes to the alternative disk currently holding the fewest data
  buckets;
* **area balance** — like data balance but balancing the total region
  volume per disk.

All heuristics run in time linear in the number of cells, preserving the
linear complexity of the index-based schemes.

Each resolver shares the signature::

    resolve(alternatives, n_disks, *, weights=None, sizes=None, rng=None)

where ``alternatives[b]`` is the (multiset) array of per-cell disks of
bucket ``b``, ``weights[b]`` its region volume (used by area balance) and
``sizes[b]`` its record count (empty buckets occupy no disk page and are
excluded from the balance counters).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng

__all__ = [
    "resolve_random",
    "resolve_most_frequent",
    "resolve_data_balance",
    "resolve_area_balance",
    "CONFLICT_HEURISTICS",
]


def _check(alternatives, n_disks):
    for i, alt in enumerate(alternatives):
        alt = np.asarray(alt)
        if alt.size == 0:
            raise ValueError(f"bucket {i} has no assignment alternatives")
        if alt.min() < 0 or alt.max() >= n_disks:
            raise ValueError(f"bucket {i} alternatives out of range [0, {n_disks})")


def resolve_random(alternatives, n_disks, *, weights=None, sizes=None, rng=None):
    """Random selection among each bucket's distinct alternative disks."""
    _check(alternatives, n_disks)
    rng = as_rng(rng)
    out = np.empty(len(alternatives), dtype=np.int64)
    for i, alt in enumerate(alternatives):
        distinct = np.unique(alt)
        out[i] = distinct[rng.integers(distinct.size)]
    return out


def resolve_most_frequent(alternatives, n_disks, *, weights=None, sizes=None, rng=None):
    """Pick the disk named most often by the bucket's per-cell mappings.

    If several disks tie for the highest multiplicity, one of them is chosen
    uniformly at random (the paper's fallback to random selection).
    """
    _check(alternatives, n_disks)
    rng = as_rng(rng)
    out = np.empty(len(alternatives), dtype=np.int64)
    for i, alt in enumerate(alternatives):
        counts = np.bincount(np.asarray(alt, dtype=np.int64), minlength=n_disks)
        top = np.nonzero(counts == counts.max())[0]
        out[i] = top[rng.integers(top.size)]
    return out


def _balance(alternatives, n_disks, load_of, rng):
    """Shared skeleton of Algorithm 1 with a pluggable per-bucket load."""
    _check(alternatives, n_disks)
    rng = as_rng(rng)
    out = np.full(len(alternatives), -1, dtype=np.int64)
    load = np.zeros(n_disks, dtype=np.float64)
    conflicted = []
    # Step 2: buckets with a single alternative are fixed.
    for i, alt in enumerate(alternatives):
        distinct = np.unique(alt)
        if distinct.size == 1:
            out[i] = distinct[0]
            load[distinct[0]] += load_of(i)
        else:
            conflicted.append((i, distinct))
    # Step 3: each conflicted bucket goes to its least-loaded alternative.
    for i, distinct in conflicted:
        loads = load[distinct]
        ties = distinct[loads == loads.min()]
        choice = ties[rng.integers(ties.size)] if ties.size > 1 else ties[0]
        out[i] = choice
        load[choice] += load_of(i)
    return out


def resolve_data_balance(alternatives, n_disks, *, weights=None, sizes=None, rng=None):
    """Algorithm 1: balance the number of (non-empty) data buckets per disk."""
    if sizes is None:
        sizes = np.ones(len(alternatives))
    sizes = np.asarray(sizes)
    return _balance(alternatives, n_disks, lambda i: float(sizes[i] > 0), rng)


def resolve_area_balance(alternatives, n_disks, *, weights=None, sizes=None, rng=None):
    """Balance the total subspace volume per disk (paper's *area balance*)."""
    if weights is None:
        raise ValueError("area balance requires per-bucket region volumes")
    weights = np.asarray(weights, dtype=np.float64)
    return _balance(alternatives, n_disks, lambda i: float(weights[i]), rng)


#: Registry used by :class:`repro.core.base.IndexBasedMethod`.
CONFLICT_HEURISTICS = {
    "random": resolve_random,
    "most_frequent": resolve_most_frequent,
    "data_balance": resolve_data_balance,
    "area_balance": resolve_area_balance,
}
