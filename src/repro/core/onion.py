"""Onion-curve allocation scheme.

Round robin along the Onion curve (:class:`repro.sfc.OnionCurve`, Xu,
Nguyen & Tirthapura, ICDE 2018) — HCAM's dealing rule with the
concentric-shell linearization instead of Hilbert.  The point of the
curve is clustering quality: a range query decomposes into few maximal
curve runs, and round robin over ``r`` runs has additive error at most
``r`` (the ``"curve_runs"`` bound family of :mod:`repro.theory`), so a
low-run curve is a low-error declustering.
"""

from __future__ import annotations

from repro.core.hcam import HCAM

__all__ = ["OnionScheme"]


class OnionScheme(HCAM):
    """Round robin along the Onion curve (``onion`` in the registry)."""

    def __init__(self, conflict: str = "data_balance", mode: str = "rank"):
        super().__init__(conflict, curve="onion", mode=mode)
        # HCAM brands non-Hilbert curves "HCAM[OnionCurve]"; this is a
        # first-class scheme with its own spec name, so rebrand.
        self.base_name = "ONION"
        self.name = f"ONION/{self._SUFFIX[conflict]}"
