"""Declustering method interfaces.

A declustering method maps every bucket of a grid file to one of ``M``
disks.  Index-based methods are defined per *cell* and are lifted to grid
files through conflict resolution (paper §2.1); proximity-based methods work
on bucket regions directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.core.conflict import CONFLICT_HEURISTICS
from repro.gridfile.gridfile import GridFile

__all__ = ["DeclusteringMethod", "IndexBasedMethod", "validate_assignment"]


def validate_assignment(assignment: np.ndarray, n_buckets: int, n_disks: int) -> np.ndarray:
    """Check that an assignment is well formed and return it as int64.

    Raises ``ValueError`` on wrong shape or out-of-range disk ids.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (n_buckets,):
        raise ValueError(
            f"assignment must have shape ({n_buckets},), got {assignment.shape}"
        )
    if assignment.size and (assignment.min() < 0 or assignment.max() >= n_disks):
        raise ValueError(f"disk ids must lie in [0, {n_disks})")
    return assignment


class DeclusteringMethod(ABC):
    """Base class: maps grid-file buckets to disks.

    Subclasses set :attr:`name` (used in reports and the registry) and
    implement :meth:`assign`.
    """

    #: Short display name, e.g. ``"DM/D"`` — set by subclasses.
    name: str = "?"

    @abstractmethod
    def assign(
        self, gf: GridFile, n_disks: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        """Compute a disk assignment for every bucket of ``gf``.

        Parameters
        ----------
        gf:
            The grid file to decluster.
        n_disks:
            Number of disks ``M``.
        rng:
            Seed or generator for any randomized step (seeding, tie-breaks).

        Returns
        -------
        numpy.ndarray
            ``(gf.n_buckets,)`` int64 array of disk ids in ``[0, n_disks)``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class IndexBasedMethod(DeclusteringMethod):
    """An index-based scheme: per-cell disk function + conflict resolution.

    Subclasses implement :meth:`cell_disks`, the pure per-cell mapping that
    defines the scheme on Cartesian product files.  :meth:`assign` lifts it
    to grid files: each bucket's conflicting per-cell alternatives are fed to
    the configured conflict-resolution heuristic.

    Parameters
    ----------
    conflict:
        One of ``"random"``, ``"most_frequent"``, ``"data_balance"``,
        ``"area_balance"`` (paper §2.1).  The paper's recommended default is
        ``"data_balance"``.
    """

    #: Base scheme name without the conflict suffix, e.g. ``"DM"``.
    base_name: str = "?"

    _SUFFIX = {"random": "R", "most_frequent": "F", "data_balance": "D", "area_balance": "A"}

    def __init__(self, conflict: str = "data_balance"):
        if conflict not in CONFLICT_HEURISTICS:
            raise ValueError(
                f"unknown conflict heuristic {conflict!r}; "
                f"choose from {sorted(CONFLICT_HEURISTICS)}"
            )
        self.conflict = conflict
        self.name = f"{self.base_name}/{self._SUFFIX[conflict]}"

    @abstractmethod
    def cell_disks(self, cells: np.ndarray, n_disks: int, shape: tuple[int, ...]) -> np.ndarray:
        """Disk id of each cell.

        Parameters
        ----------
        cells:
            ``(n, d)`` integer cell coordinates.
        n_disks:
            Number of disks ``M``.
        shape:
            Full directory shape (some schemes, e.g. rank-based HCAM, need
            the grid extent, not just the queried cells).

        Returns
        -------
        numpy.ndarray
            ``(n,)`` int64 disk ids.
        """

    def disk_grid(self, shape: tuple[int, ...], n_disks: int) -> np.ndarray:
        """Per-cell disk ids for a whole directory, as an array of ``shape``."""
        check_positive_int(n_disks, "n_disks")
        axes = [np.arange(n) for n in shape]
        mesh = np.meshgrid(*axes, indexing="ij")
        cells = np.stack([m.ravel() for m in mesh], axis=1)
        return self.cell_disks(cells, n_disks, shape).reshape(shape)

    def assign(
        self, gf: GridFile, n_disks: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        """Lift the per-cell scheme to ``gf``'s buckets via conflict resolution."""
        rng = as_rng(rng)
        grid = self.disk_grid(gf.directory.shape, n_disks)
        alternatives = [grid[b.cellbox.slices()].ravel() for b in gf.buckets]
        reg_lo, reg_hi = gf.bucket_regions()
        volumes = np.prod(reg_hi - reg_lo, axis=1)
        resolver = CONFLICT_HEURISTICS[self.conflict]
        assignment = resolver(
            alternatives,
            n_disks,
            weights=volumes,
            sizes=gf.bucket_sizes(),
            rng=rng,
        )
        return validate_assignment(assignment, gf.n_buckets, n_disks)
