"""Scalable (approximate) minimax declustering for millions of buckets.

The paper's Algorithm 2 does O(N²) weight evaluations over a dense bucket
proximity matrix — fine for the 19,956-bucket 4-d file it measures,
impossible at the 1M+ buckets the ROADMAP north star targets (the matrix
alone would be 8 TB).  This module replaces both quadratic ingredients:

* **Sparse k-NN proximity graph** (:func:`knn_graph`) — instead of all
  ``N²`` pairs, each bucket is connected to the buckets that fall near it
  on one or more space-filling-curve orderings (:mod:`repro.sfc`).  SFC
  neighbours are overwhelmingly the geometric neighbours, which is exactly
  where the proximity index is large; far pairs contribute weights near
  zero and are dropped.  The graph is CSR, symmetric, self-edge-free and
  O(N·k) in memory; the consecutive-in-curve-order "backbone" edges of the
  primary curve are always kept, so the graph is connected by
  construction.
* **Hierarchical coarsen-partition-refine minimax**
  (:func:`scalable_minimax_partition`) — buckets are chunked in Hilbert
  order into super-nodes (bounding boxes of consecutive curve runs),
  *exact* minimax (Algorithm 2, unchanged) partitions the coarse graph,
  every bucket inherits its chunk's disk, a deterministic spill pass
  restores the ``⌈N/M⌉ + slack`` balance cap, and a budgeted local-search
  pass moves individual boundary buckets to the neighbouring disk that
  minimises their maximum same-disk proximity — the same min-of-max
  objective Algorithm 2 greedily optimises, applied only where the sparse
  graph says it matters.

Below ``dense_threshold`` buckets the function delegates to
:func:`repro.core.minimax.minimax_partition` unchanged, so small files are
**bit-for-bit identical** to the exact path (regression-pinned).  Above
it, time and memory are O(N·k + C²) with ``C ≈ N / chunk`` coarse nodes —
a 1M-bucket file declusters in well under a minute on a laptop instead of
never.  Quality is gated against the exact-minimax oracle by
``benchmarks/bench_ext_scale.py`` (response-time ratio on the paper's
square-query workload) and ``tests/test_scalable.py``.

The streaming entry point :func:`bulk_assign` takes a
:class:`~repro.gridfile.gridfile.GridFile` (or a
:class:`~repro.storage.gridstore.DurableGridFile`, or raw region blocks)
and produces an assignment without ever materialising pairwise weights.
See ``docs/scaling.md`` for the knob guide and measured frontier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.core.base import DeclusteringMethod, validate_assignment
from repro.core.minimax import minimax_partition, resolve_cache_bytes
from repro.core.proximity import euclidean_similarity, proximity_index
from repro.obs import GLOBAL_METRICS, PROFILER
from repro.sfc import CURVES, bits_for

__all__ = [
    "DEFAULT_DENSE_THRESHOLD",
    "DEFAULT_WINDOW",
    "DEFAULT_CURVES",
    "ProximityGraph",
    "sfc_order",
    "knn_graph",
    "scalable_minimax_partition",
    "bulk_assign",
    "ScalableMinimax",
]

_WEIGHTS = {"proximity": proximity_index, "euclidean": euclidean_similarity}

#: Below this many boxes the exact dense path runs unchanged (bit-for-bit).
DEFAULT_DENSE_THRESHOLD = 4096

#: Curve-order window: each box is linked to this many successors on each
#: configured curve ordering (per-node degree ≈ 2 · window · n_curves).
DEFAULT_WINDOW = 4

#: Curve orderings whose windows are unioned into the k-NN graph.  Two
#: different curves catch neighbours the other's discontinuities miss.
DEFAULT_CURVES = ("hilbert", "zorder")

#: Coarse-graph size target: chunks are sized so the exact minimax run at
#: the top of the hierarchy sees at most this many super-nodes.
_MAX_COARSE = 4096


def sfc_order(lo: np.ndarray, hi: np.ndarray, curve: str = "hilbert") -> np.ndarray:
    """Order boxes along a space-filling curve over their centers.

    Centers are quantized onto the smallest power-of-two grid whose keys
    fit int64 (``bits = min(16, 62 // d)`` per dimension), normalized to
    the bounding box of the centers so the ordering is invariant to the
    domain's absolute position.  Ties (boxes quantizing to the same cell)
    break by box index — the ordering is fully deterministic.

    Returns the ``(n,)`` permutation that sorts boxes by curve position.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    n, d = lo.shape
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if curve not in CURVES:
        raise ValueError(f"unknown curve {curve!r}; choose from {sorted(CURVES)}")
    centers = (lo + hi) * 0.5
    bits = max(1, min(16, 62 // d))
    side = (1 << bits) - 1
    cmin = centers.min(axis=0)
    span = centers.max(axis=0) - cmin
    span[span <= 0] = 1.0
    coords = np.clip((centers - cmin) / span * side, 0, side).astype(np.int64)
    keys = CURVES[curve](dims=d, bits=bits).index(coords)
    return np.argsort(keys, kind="stable").astype(np.int64)


@dataclass(frozen=True)
class ProximityGraph:
    """A sparse symmetric proximity graph in CSR form.

    ``indices[indptr[u]:indptr[u+1]]`` are ``u``'s neighbours and
    ``weights[...]`` the matching edge weights.  Symmetric (every edge is
    stored in both directions), no self-edges.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.indptr.shape[0] - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return self.indices.shape[0] // 2

    def degree(self, u: int) -> int:
        """Neighbour count of node ``u``."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def neighbors(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbour ids, edge weights)`` of node ``u`` (views)."""
        s, e = int(self.indptr[u]), int(self.indptr[u + 1])
        return self.indices[s:e], self.weights[s:e]


def _edges_to_csr(n: int, a: np.ndarray, b: np.ndarray, w: np.ndarray) -> ProximityGraph:
    """Symmetrize undirected edge list ``(a, b, w)`` into CSR."""
    row = np.concatenate([a, b])
    col = np.concatenate([b, a])
    ww = np.concatenate([w, w])
    order = np.lexsort((col, row))
    row, col, ww = row[order], col[order], ww[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(row, minlength=n), out=indptr[1:])
    return ProximityGraph(indptr=indptr, indices=col, weights=ww)


def knn_graph(
    lo: np.ndarray,
    hi: np.ndarray,
    lengths: np.ndarray,
    *,
    window: int = DEFAULT_WINDOW,
    k: "int | None" = None,
    curves: "tuple[str, ...]" = DEFAULT_CURVES,
    weight: str = "proximity",
) -> ProximityGraph:
    """Sparse k-NN proximity graph via space-filling-curve windowing.

    For every configured curve, each box is linked to its ``window``
    successors in curve order; the union over curves (deduplicated) forms
    the candidate edge set, weighted by the configured box-pair weight.
    With ``k`` set, edges are pruned to each node's top-``k`` heaviest
    (an edge survives if it ranks within ``k`` at *either* endpoint, which
    preserves symmetry) — except the offset-1 "backbone" edges of the
    primary curve, which are always kept so the graph stays connected.

    O(N · window · len(curves)) time and memory; never materialises an
    N×N matrix.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    n = lo.shape[0]
    check_positive_int(window, "window")
    if k is not None:
        check_positive_int(k, "k")
    if weight not in _WEIGHTS:
        raise ValueError(f"unknown weight {weight!r}; choose from {sorted(_WEIGHTS)}")
    if not curves:
        raise ValueError("need at least one curve")
    if n <= 1:
        z = np.empty(0, dtype=np.int64)
        return ProximityGraph(np.zeros(n + 1, dtype=np.int64), z, np.empty(0))

    us, vs = [], []
    backbone_key = None
    for ci, curve in enumerate(curves):
        order = sfc_order(lo, hi, curve)
        for off in range(1, min(window, n - 1) + 1):
            u, v = order[:-off], order[off:]
            us.append(u)
            vs.append(v)
            if ci == 0 and off == 1:
                a1 = np.minimum(u, v)
                b1 = np.maximum(u, v)
                backbone_key = a1 * n + b1
    a = np.concatenate(us)
    b = np.concatenate(vs)
    a, b = np.minimum(a, b), np.maximum(a, b)
    key = np.unique(a * n + b)
    a, b = key // n, key % n
    w = _WEIGHTS[weight](lo[a], hi[a], lo[b], hi[b], lengths)

    if k is not None:
        # Rank each directed edge within its node by descending weight
        # (ties by neighbour id: fully deterministic), keep an edge when
        # either endpoint ranks it within k — or it is backbone.
        row = np.concatenate([a, b])
        eid = np.tile(np.arange(a.shape[0]), 2)
        order = np.lexsort((np.concatenate([b, a]), -np.concatenate([w, w]), row))
        row_s, eid_s = row[order], eid[order]
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(np.bincount(row_s, minlength=n)[:-1], out=starts[1:])
        rank = np.arange(row_s.shape[0]) - starts[row_s]
        keep = np.zeros(a.shape[0], dtype=bool)
        np.logical_or.at(keep, eid_s, rank < k)
        keep |= np.isin(key, backbone_key)
        a, b, w = a[keep], b[keep], w[keep]

    graph = _edges_to_csr(n, a, b, w)
    GLOBAL_METRICS.counter("minimax.sparse.edges").inc(graph.n_edges)
    return graph


def _chunk_reduceat(values: np.ndarray, starts: np.ndarray, op) -> np.ndarray:
    """Segmented reduction of ``values`` at ``starts`` along axis 0."""
    return op.reduceat(values, starts, axis=0)


def _spill_overloaded(
    graph: ProximityGraph, assign: np.ndarray, n_disks: int, cap: int
) -> int:
    """Move least-attached buckets off overloaded disks until all fit ``cap``.

    A bucket's *attachment* is its maximum proximity to a same-disk
    neighbour in the sparse graph; spilling the least-attached buckets
    first is the cheapest way (under the minimax objective) to restore
    balance.  Each spilled bucket lands on the neighbouring disk with
    capacity that minimises its new maximum same-disk proximity (a disk
    with no graph neighbours costs 0 and wins).  Deterministic; returns
    the number of buckets moved.
    """
    n = assign.shape[0]
    load = np.bincount(assign, minlength=n_disks)
    if load.max() <= cap:
        return 0
    u_of_edge = np.repeat(np.arange(n), np.diff(graph.indptr))
    same = assign[u_of_edge] == assign[graph.indices]
    cost = np.zeros(n)
    np.maximum.at(cost, u_of_edge[same], graph.weights[same])

    moved = 0
    # Least-attached first; ties by bucket id (stable argsort).
    by_cost = np.argsort(cost, kind="stable")
    scratch = np.empty(n_disks)
    for u in by_cost:
        src = int(assign[u])
        if load[src] <= cap:
            continue
        nbr, w = graph.neighbors(int(u))
        scratch[:] = 0.0
        np.maximum.at(scratch, assign[nbr], w)
        cand = np.where(load < cap, scratch, np.inf)
        cand[src] = np.inf
        dst = int(np.argmin(cand))
        if not np.isfinite(cand[dst]):
            continue  # every other disk is full; a later spill frees room
        assign[u] = dst
        load[src] -= 1
        load[dst] += 1
        moved += 1
        if load.max() <= cap:
            break
    return moved


def _refine_sparse(
    graph: ProximityGraph,
    assign: np.ndarray,
    n_disks: int,
    cap: int,
    passes: int,
    budget: int,
) -> int:
    """Budgeted local search on the sparse graph (minimax objective proxy).

    Per pass: compute every bucket's cost (max proximity to a same-disk
    neighbour), then walk the costliest candidates and move each to the
    neighbouring disk with capacity that strictly lowers its cost.  The
    per-candidate decision re-reads the live assignment, so moves within a
    pass compose correctly; the pass-level cost array only orders
    candidates.  Stops at ``budget`` total moves or when a pass moves
    nothing.  Returns the number of moves applied.
    """
    n = assign.shape[0]
    if budget <= 0 or passes <= 0:
        return 0
    load = np.bincount(assign, minlength=n_disks)
    u_of_edge = np.repeat(np.arange(n), np.diff(graph.indptr))
    scratch = np.empty(n_disks)
    total_moves = 0
    for _ in range(passes):
        nbr_disk = assign[graph.indices]
        same = assign[u_of_edge] == nbr_disk
        cost = np.zeros(n)
        np.maximum.at(cost, u_of_edge[same], graph.weights[same])
        # Costliest first; examine at most 2x the remaining budget so a
        # tight budget stays cheap even on huge graphs.
        candidates = np.argsort(-cost, kind="stable")
        candidates = candidates[cost[candidates] > 0.0][: 2 * (budget - total_moves)]
        pass_moves = 0
        for u in candidates:
            if total_moves >= budget:
                break
            u = int(u)
            src = int(assign[u])
            nbr, w = graph.neighbors(u)
            scratch[:] = 0.0
            np.maximum.at(scratch, assign[nbr], w)
            cur = scratch[src]
            if cur <= 0.0:
                continue  # an earlier move already detached this bucket
            cand = np.where(load + 1 <= cap, scratch, np.inf)
            cand[src] = np.inf
            dst = int(np.argmin(cand))
            if cand[dst] < cur:
                assign[u] = dst
                load[src] -= 1
                load[dst] += 1
                total_moves += 1
                pass_moves += 1
        if pass_moves == 0 or total_moves >= budget:
            break
    return total_moves


def scalable_minimax_partition(
    lo: np.ndarray,
    hi: np.ndarray,
    lengths: np.ndarray,
    n_disks: int,
    rng=None,
    *,
    weight: str = "proximity",
    seeding: str = "random",
    dense_threshold: int = DEFAULT_DENSE_THRESHOLD,
    chunk: "int | None" = None,
    window: int = DEFAULT_WINDOW,
    k: "int | None" = None,
    curves: "tuple[str, ...]" = DEFAULT_CURVES,
    balance_slack: int = 1,
    refine_passes: int = 2,
    refine_budget: "int | None" = None,
    graph: "ProximityGraph | None" = None,
    cache_bytes: "int | None" = None,
) -> np.ndarray:
    """Approximate minimax partition scaling to millions of boxes.

    Parameters
    ----------
    lo, hi, lengths, n_disks, rng, weight, seeding:
        As for :func:`repro.core.minimax.minimax_partition`.
    dense_threshold:
        At or below this many boxes the exact dense algorithm runs
        unchanged — the result is bit-for-bit identical to
        ``minimax_partition`` (set 0 to force the sparse path, e.g. in
        tests).
    chunk:
        Boxes per super-node for the coarse pass.  Default sizes chunks so
        the coarse graph has at most ``_MAX_COARSE`` nodes.
    window, k, curves:
        Sparse-graph knobs (see :func:`knn_graph`).
    balance_slack:
        Allowed excess over ``⌈N/M⌉`` boxes per disk (default 1).  The
        spill pass enforces the cap exactly; refinement respects it.
    refine_passes, refine_budget:
        Local-search budget: at most ``refine_budget`` single-bucket moves
        (default ``max(256, N // 16)``) over at most ``refine_passes``
        sweeps.
    graph:
        Optional prebuilt :class:`ProximityGraph` (e.g. shared across the
        disk counts of a sweep).
    cache_bytes:
        Row-cache cap forwarded to the dense path (both the fallback and
        the coarse-graph run); ``None`` uses the default / env knob.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` disk ids; every disk receives at most
        ``⌈n/M⌉ + balance_slack`` boxes.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    n = lo.shape[0]
    m = check_positive_int(n_disks, "n_disks")
    if dense_threshold < 0:
        raise ValueError(f"dense_threshold must be >= 0, got {dense_threshold}")
    if balance_slack < 0:
        raise ValueError(f"balance_slack must be >= 0, got {balance_slack}")
    if n <= max(dense_threshold, m) or n <= 2:
        return minimax_partition(
            lo, hi, lengths, m, rng=rng, weight=weight, seeding=seeding,
            cache_bytes=resolve_cache_bytes(cache_bytes),
        )
    rng = as_rng(rng)

    with PROFILER.phase("minimax.sparse.graph"):
        primary_order = sfc_order(lo, hi, curves[0])
        if graph is None:
            graph = knn_graph(
                lo, hi, lengths, window=window, k=k, curves=curves, weight=weight
            )
        elif graph.n != n:
            raise ValueError(f"graph has {graph.n} nodes, expected {n}")

    with PROFILER.phase("minimax.sparse.coarse"):
        if chunk is None:
            chunk = max(1, -(-n // _MAX_COARSE))
        else:
            chunk = check_positive_int(chunk, "chunk")
        n_chunks = -(-n // chunk)
        # Even chunking along the primary curve order: sizes differ by <= 1.
        groups = np.array_split(primary_order, n_chunks)
        sizes = np.array([g.shape[0] for g in groups], dtype=np.int64)
        starts = np.zeros(n_chunks, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        super_lo = _chunk_reduceat(lo[primary_order], starts, np.minimum)
        super_hi = _chunk_reduceat(hi[primary_order], starts, np.maximum)
        GLOBAL_METRICS.counter("minimax.sparse.chunks").inc(n_chunks)
        coarse = minimax_partition(
            super_lo, super_hi, lengths, min(m, n_chunks), rng=rng,
            weight=weight, seeding=seeding,
            cache_bytes=resolve_cache_bytes(cache_bytes),
        )
        assign = np.empty(n, dtype=np.int64)
        chunk_of = np.empty(n, dtype=np.int64)
        for ci, g in enumerate(groups):
            assign[g] = coarse[ci]
            chunk_of[g] = ci

    with PROFILER.phase("minimax.sparse.refine"):
        cap = -(-n // m) + balance_slack
        spilled = _spill_overloaded(graph, assign, m, cap)
        if refine_budget is None:
            refine_budget = max(256, n // 16)
        moves = _refine_sparse(graph, assign, m, cap, refine_passes, refine_budget)
        GLOBAL_METRICS.counter("minimax.sparse.spill_moves").inc(spilled)
        GLOBAL_METRICS.counter("minimax.sparse.refine_moves").inc(moves)
    return assign


def _region_blocks(source, block: int):
    """Yield ``(lo, hi)`` region blocks plus domain lengths from a source.

    Accepts a :class:`GridFile` (or anything with ``buckets`` + ``scales``,
    e.g. the live file of a :class:`DurableGridFile` which is unwrapped via
    its ``gf`` attribute) and streams bucket regions ``block`` buckets at a
    time — the full region arrays are accumulated (O(N·d)), but no
    intermediate all-buckets Python list and never any pairwise weights.
    """
    gf = getattr(source, "gf", source)
    buckets = gf.buckets
    scales = gf.scales
    for s in range(0, len(buckets), block):
        chunk = buckets[s : s + block]
        cell_lo = np.stack([b.cellbox.lo for b in chunk])
        cell_hi = np.stack([b.cellbox.hi for b in chunk])
        yield scales.box_bounds(cell_lo, cell_hi)


def bulk_assign(
    source,
    n_disks: int,
    rng=None,
    *,
    block: int = 65536,
    **kwargs,
) -> np.ndarray:
    """Streaming bulk-load declustering of a grid file.

    Streams bucket regions out of ``source`` (a
    :class:`~repro.gridfile.gridfile.GridFile`, a
    :class:`~repro.storage.gridstore.DurableGridFile`, or any object with
    ``buckets`` and ``scales``) in blocks of ``block`` buckets, then runs
    :func:`scalable_minimax_partition` over the non-empty buckets —
    O(N·k + C²) memory end to end, no dense weight matrix at any point.
    Empty buckets are dealt round-robin (they occupy no disk page).

    Keyword arguments are forwarded to :func:`scalable_minimax_partition`.
    """
    gf = getattr(source, "gf", source)
    check_positive_int(block, "block")
    with PROFILER.phase("minimax.sparse.bulkload"):
        parts = list(_region_blocks(gf, block))
        lo = np.concatenate([p[0] for p in parts])
        hi = np.concatenate([p[1] for p in parts])
    nonempty = gf.nonempty_bucket_ids()
    n = lo.shape[0]
    part = scalable_minimax_partition(
        np.ascontiguousarray(lo[nonempty]),
        np.ascontiguousarray(hi[nonempty]),
        gf.scales.lengths,
        min(n_disks, max(1, nonempty.size)),
        rng=rng,
        **kwargs,
    )
    assignment = np.zeros(n, dtype=np.int64)
    assignment[nonempty] = part
    empty = np.setdiff1d(np.arange(n), nonempty, assume_unique=False)
    assignment[empty] = np.arange(empty.size) % n_disks
    return validate_assignment(assignment, n, n_disks)


class ScalableMinimax(DeclusteringMethod):
    """Hierarchical approximate minimax (the large-N production path).

    Drop-in :class:`~repro.core.base.DeclusteringMethod`: identical to
    :class:`~repro.core.minimax.Minimax` at or below ``dense_threshold``
    non-empty buckets (bit-for-bit — it delegates to the same code), and
    the coarsen-partition-refine approximation above it.  Registry spec
    ``"sminimax"`` (``"sminimax:euclidean"`` for the ablation weight).

    Parameters mirror :func:`scalable_minimax_partition`.
    """

    name = "SMiniMax"

    def __init__(
        self,
        weight: str = "proximity",
        seeding: str = "random",
        dense_threshold: int = DEFAULT_DENSE_THRESHOLD,
        chunk: "int | None" = None,
        window: int = DEFAULT_WINDOW,
        k: "int | None" = None,
        curves: "tuple[str, ...]" = DEFAULT_CURVES,
        balance_slack: int = 1,
        refine_passes: int = 2,
        refine_budget: "int | None" = None,
    ):
        if weight not in _WEIGHTS:
            raise ValueError(f"unknown weight {weight!r}")
        self.weight = weight
        self.seeding = seeding
        self.dense_threshold = int(dense_threshold)
        self.chunk = chunk
        self.window = window
        self.k = k
        self.curves = tuple(curves)
        self.balance_slack = balance_slack
        self.refine_passes = refine_passes
        self.refine_budget = refine_budget
        if weight != "proximity":
            self.name = f"SMiniMax[{weight}]"

    def assign(self, gf, n_disks: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        return bulk_assign(
            gf,
            n_disks,
            rng=rng,
            weight=self.weight,
            seeding=self.seeding,
            dense_threshold=self.dense_threshold,
            chunk=self.chunk,
            window=self.window,
            k=self.k,
            curves=self.curves,
            balance_slack=self.balance_slack,
            refine_passes=self.refine_passes,
            refine_budget=self.refine_budget,
        )
