"""Exact optimal declustering for small instances (branch and bound).

The paper compares against the *clairvoyant* bound ``⌈buckets/M⌉``, which
no single assignment may achieve for every query simultaneously.  For small
instances the true optimum — the assignment minimizing the summed response
``Σ_q max_i N_i(q)`` over a workload — is computable by branch and bound,
giving the heuristics an absolute yardstick instead of a lower bound:
``tests/test_exact.py`` shows minimax/KL landing within a few percent of
optimal on every random tiny instance, which is the strongest quality
statement this reproduction makes.

Pruning: placing a bucket can only keep or raise each query's max, so the
running objective plus the per-query floor ``⌈remaining_min/M⌉`` bounds any
completion.  Symmetry: bucket ``i`` may only use disks ``0..used+1``, which
divides the search space by ``M!`` up front.  Practical sizes: N ≲ 16,
M ≲ 4, a few dozen queries.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int

__all__ = ["exact_optimal_assignment"]


def _total_response(counts: np.ndarray) -> int:
    return int(counts.max(axis=1).sum())


def exact_optimal_assignment(
    bucket_lists,
    n_buckets: int,
    n_disks: int,
    balanced: bool = True,
    node_limit: int = 5_000_000,
) -> tuple[np.ndarray, int]:
    """The assignment minimizing ``Σ_q max_i N_i(q)``, by branch and bound.

    Parameters
    ----------
    bucket_lists:
        Per-query arrays of bucket ids (buckets not appearing in any query
        are placed round-robin afterwards — they cannot affect the value).
    n_buckets:
        Number of buckets N.
    n_disks:
        Number of disks M.
    balanced:
        Enforce ``≤ ⌈N/M⌉`` buckets per disk (the regime every balanced
        heuristic plays in).  With False the unconstrained optimum may be
        lower.
    node_limit:
        Safety cap on search-tree nodes; exceeded search raises
        ``RuntimeError`` (the instance is too big for exact search).

    Returns
    -------
    (assignment, value):
        An optimal ``(n_buckets,)`` assignment and its summed response.
    """
    check_positive_int(n_buckets, "n_buckets")
    m = check_positive_int(n_disks, "n_disks")
    check_positive_int(node_limit, "node_limit")
    bucket_lists = [np.asarray(b, dtype=np.int64) for b in bucket_lists]
    for bl in bucket_lists:
        if bl.size and (bl.min() < 0 or bl.max() >= n_buckets):
            raise ValueError("bucket id out of range")

    queries_of: list[list[int]] = [[] for _ in range(n_buckets)]
    for qi, bl in enumerate(bucket_lists):
        for b in bl:
            queries_of[int(b)].append(qi)
    active = [b for b in range(n_buckets) if queries_of[b]]
    # Place high-participation buckets first: conflicts surface early.
    active.sort(key=lambda b: -len(queries_of[b]))

    n_q = len(bucket_lists)
    counts = np.zeros((n_q, m), dtype=np.int64)
    remaining = np.array([bl.size for bl in bucket_lists], dtype=np.int64)
    # The balance cap is ⌈N/M⌉ over ALL buckets, not ⌈active/M⌉: buckets
    # touched by no query still occupy disk slots, so they can absorb the
    # slack and let the active buckets skew further than ⌈active/M⌉ while
    # the file as a whole stays balanced.  (The least-loaded fill below
    # keeps every disk at ≤ ⌈N/M⌉ afterwards.)
    cap = -(-n_buckets // m) if balanced else n_buckets
    load = np.zeros(m, dtype=np.int64)

    best_value = np.inf
    best_assignment: "np.ndarray | None" = None
    current = np.zeros(len(active), dtype=np.int64)
    nodes = 0

    def lower_bound() -> float:
        # Each query ends at least at max(current max, ceil(total/M)).
        cur_max = counts.max(axis=1) if m > 0 else np.zeros(n_q)
        totals = counts.sum(axis=1) + remaining
        floor = -(-totals // m)
        return float(np.maximum(cur_max, floor).sum())

    def search(idx: int, used: int):
        nonlocal best_value, best_assignment, nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                f"exact search exceeded {node_limit} nodes; instance too large"
            )
        if idx == len(active):
            value = _total_response(counts)
            if value < best_value:
                best_value = value
                best_assignment = current.copy()
            return
        if lower_bound() >= best_value:
            return
        b = active[idx]
        qs = queries_of[b]
        remaining[qs] -= 1
        for disk in range(min(used + 1, m)):
            if load[disk] >= cap:
                continue
            counts[qs, disk] += 1
            load[disk] += 1
            current[idx] = disk
            search(idx + 1, max(used, disk + 1))
            counts[qs, disk] -= 1
            load[disk] -= 1
        remaining[qs] += 1

    search(0, 0)
    assert best_assignment is not None

    out = np.zeros(n_buckets, dtype=np.int64)
    for idx, b in enumerate(active):
        out[b] = best_assignment[idx]
    # Inactive buckets cannot affect the objective; fill them least-loaded
    # so the overall ⌈N/M⌉ balance cap holds for the whole file.
    final_load = np.bincount(out[active], minlength=m) if active else np.zeros(m, dtype=np.int64)
    for b in (b for b in range(n_buckets) if not queries_of[b]):
        disk = int(np.argmin(final_load))
        out[b] = disk
        final_load[disk] += 1
    return out, int(best_value)
