"""Hilbert Curve Allocation Method (HCAM; Faloutsos & Bhagwat, PDIS 1993).

Cells are linearized along a space-filling curve and dealt to disks in round
robin.  Two flavours are provided:

* ``mode="rank"`` (default, faithful to "assigned to disks in a round robin
  fashion"): the disk is the *rank* of the cell's curve position among all
  cells of the grid, mod M — exact round robin even when the grid is not a
  power-of-two cube;
* ``mode="raw"``: the raw curve index mod M, the literal formula
  ``H(i_1..i_d) mod M``; identical to rank on full power-of-two cubes but
  unbalanced on punctured grids (this is the formula as printed in the
  paper, ablated in ``benchmarks/bench_ablation_hcam.py``).

The curve defaults to Hilbert; any :class:`repro.sfc.SpaceFillingCurve`
subclass can be substituted to measure linearization quality (Z-order,
Gray-code, scan) — paper §2.3 cites the folklore that Hilbert clusters best.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import IndexBasedMethod
from repro.sfc import CURVES, bits_for
from repro.sfc.hilbert import HilbertCurve

__all__ = ["HCAM"]


class HCAM(IndexBasedMethod):
    """HCAM: disk = round-robin position along a space-filling curve.

    Parameters
    ----------
    conflict:
        Conflict-resolution heuristic for merged buckets (see
        :class:`repro.core.base.IndexBasedMethod`).
    curve:
        Curve name (``"hilbert"``, ``"zorder"``, ``"gray"``, ``"scan"``) or a
        curve *class*.  Default Hilbert.
    mode:
        ``"rank"`` (default) or ``"raw"`` — see module docstring.
    """

    base_name = "HCAM"

    def __init__(self, conflict: str = "data_balance", curve="hilbert", mode: str = "rank"):
        super().__init__(conflict)
        if isinstance(curve, str):
            if curve not in CURVES:
                raise ValueError(f"unknown curve {curve!r}; choose from {sorted(CURVES)}")
            curve = CURVES[curve]
        self.curve_cls = curve
        if mode not in ("rank", "raw"):
            raise ValueError(f"mode must be 'rank' or 'raw', got {mode!r}")
        self.mode = mode
        if curve is not HilbertCurve:
            self.base_name = f"HCAM[{getattr(curve, '__name__', curve)}]"
            self.name = f"{self.base_name}/{self._SUFFIX[conflict]}"

    def _curve(self, shape):
        return self.curve_cls(dims=len(shape), bits=bits_for(max(shape)))

    def cell_disks(self, cells: np.ndarray, n_disks: int, shape) -> np.ndarray:
        cells = np.asarray(cells, dtype=np.int64)
        curve = self._curve(shape)
        keys = curve.index(cells)
        if self.mode == "raw":
            return keys % n_disks
        # Rank of each queried cell's key among the keys of *all* grid cells.
        axes = [np.arange(n) for n in shape]
        mesh = np.meshgrid(*axes, indexing="ij")
        all_cells = np.stack([m.ravel() for m in mesh], axis=1)
        all_keys = np.sort(curve.index(all_cells))
        ranks = np.searchsorted(all_keys, keys)
        return ranks % n_disks

    def disk_grid(self, shape: tuple[int, ...], n_disks: int) -> np.ndarray:
        """Whole-directory disk map; avoids recomputing all-cell keys twice."""
        axes = [np.arange(n) for n in shape]
        mesh = np.meshgrid(*axes, indexing="ij")
        cells = np.stack([m.ravel() for m in mesh], axis=1)
        curve = self._curve(shape)
        keys = curve.index(cells)
        if self.mode == "raw":
            return (keys % n_disks).reshape(shape)
        ranks = np.empty(keys.size, dtype=np.int64)
        ranks[np.argsort(keys, kind="stable")] = np.arange(keys.size)
        return (ranks % n_disks).reshape(shape)
