"""Online bucket placement: where does a freshly split bucket go?

The paper declusters a *frozen* grid file; a live one keeps splitting
buckets while queries are in flight, and each new bucket must be assigned a
disk immediately — there is no time for a global recompute per insert.  A
:class:`PlacementPolicy` makes that call.  Three policies span the
quality-vs-movement spectrum the online engine measures
(``benchmarks/bench_ext_online.py``):

* :class:`RoundRobinLeastLoaded` — place on the least-loaded disk, breaking
  ties round-robin.  Never moves existing buckets (zero movement), but
  ignores proximity entirely.
* :class:`ProximitySteal` — place on the disk whose current content has the
  smallest *maximum proximity* to the new bucket (Algorithm 2's selection
  rule, via :func:`repro.core.redistribute.min_proximity_steal`); when the
  placement leaves a disk over quota, steal its least-proximal bucket for
  the most underloaded disk.  Small bounded movement, proximity-aware.
* :class:`RecomputeOnThreshold` — place least-loaded, but every so many
  placements (or when bucket-count imbalance crosses a factor) recompute a
  from-scratch assignment with a full declustering method and reconcile
  under a movement budget (:func:`repro.core.redistribute.bounded_reconcile`).

Loads are counted in *non-empty* buckets, matching the repo-wide balance
quota ``⌈N/M⌉`` (empty buckets occupy no disk page).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.core.proximity import proximity_index
from repro.core.redistribute import bounded_reconcile, min_proximity_steal
from repro.gridfile.gridfile import GridFile

__all__ = [
    "PlacementPolicy",
    "RoundRobinLeastLoaded",
    "ProximitySteal",
    "RecomputeOnThreshold",
    "make_placement",
    "PLACEMENT_POLICIES",
]


def _loads(assignment: np.ndarray, sizes: np.ndarray, n_disks: int) -> np.ndarray:
    """Non-empty buckets per disk (``sizes`` aligned with ``assignment``)."""
    mask = sizes[: assignment.shape[0]] > 0
    return np.bincount(assignment[mask], minlength=n_disks)


class PlacementPolicy(ABC):
    """Chooses the disk of each new bucket; may request maintenance moves."""

    #: Registry / report name.
    name: str = "placement"

    @abstractmethod
    def place(
        self, gf: GridFile, assignment: np.ndarray, new_bucket: int, n_disks: int
    ) -> int:
        """Disk for ``new_bucket`` (already appended to ``gf.buckets``).

        ``assignment`` covers the pre-existing buckets (length
        ``new_bucket``); the returned disk id is appended by the caller.
        """

    def maintain(
        self, gf: GridFile, assignment: np.ndarray, n_disks: int
    ) -> list[tuple[int, int]]:
        """Optional follow-up moves ``(bucket_id, new_disk)`` after placement.

        ``assignment`` now covers every bucket (placement applied).  The
        caller applies the moves in order and charges their movement cost.
        """
        return []


class RoundRobinLeastLoaded(PlacementPolicy):
    """Least-loaded disk, round-robin among ties.  Zero movement."""

    name = "rr-least-loaded"

    def __init__(self):
        self._next = 0

    def place(self, gf, assignment, new_bucket, n_disks) -> int:
        load = _loads(assignment, gf.bucket_sizes(), n_disks)
        tied = np.nonzero(load == load.min())[0]
        # First tied disk at or after the round-robin pointer (cyclically).
        ahead = tied[tied >= self._next]
        disk = int(ahead[0]) if ahead.size else int(tied[0])
        self._next = (disk + 1) % n_disks
        return disk


class ProximitySteal(PlacementPolicy):
    """Min-max-proximity placement with bounded stealing.

    Parameters
    ----------
    max_steals:
        Maximum maintenance moves per placement event (default 1).
    slack:
        Extra buckets a disk may hold beyond the ``⌈N/M⌉`` quota before a
        steal is triggered (default 0).
    """

    name = "proximity-steal"

    def __init__(self, max_steals: int = 1, slack: int = 0):
        if max_steals < 0 or slack < 0:
            raise ValueError("max_steals and slack must be non-negative")
        self.max_steals = int(max_steals)
        self.slack = int(slack)

    def place(self, gf, assignment, new_bucket, n_disks) -> int:
        sizes = gf.bucket_sizes()
        load = _loads(assignment, sizes, n_disks)
        n_nonempty = int((sizes > 0).sum())
        quota = -(-n_nonempty // n_disks)
        under = np.nonzero(load < quota)[0]
        candidates = under if under.size else np.arange(n_disks)
        lo, hi = gf.bucket_regions()
        lengths = gf.scales.lengths
        nonempty = sizes > 0
        nonempty[new_bucket] = False
        best = None  # (max_proximity, load, disk)
        for d in candidates:
            anchors = np.nonzero(nonempty[: assignment.shape[0]] & (assignment == d))[0]
            if anchors.size:
                w = float(
                    proximity_index(
                        lo[new_bucket], hi[new_bucket], lo[anchors], hi[anchors], lengths
                    ).max()
                )
            else:
                w = 0.0
            key = (w, int(load[d]), int(d))
            if best is None or key < best:
                best = key
        return best[2]

    def maintain(self, gf, assignment, n_disks) -> list[tuple[int, int]]:
        sizes = gf.bucket_sizes()
        lo, hi = gf.bucket_regions()
        lengths = gf.scales.lengths
        assignment = assignment.copy()
        moves: list[tuple[int, int]] = []
        for _ in range(self.max_steals):
            load = _loads(assignment, sizes, n_disks)
            quota = -(-int((sizes > 0).sum()) // n_disks)
            if load.max() <= quota + self.slack or load.min() >= quota:
                break
            src = int(np.argmax(load))
            dst = int(np.argmin(load))
            nonempty = sizes > 0
            candidates = np.nonzero(nonempty & (assignment == src))[0]
            anchors = np.nonzero(nonempty & (assignment == dst))[0]
            if candidates.size == 0:
                break
            b = min_proximity_steal(lo, hi, lengths, candidates, anchors)
            assignment[b] = dst
            moves.append((b, dst))
        return moves


class RecomputeOnThreshold(PlacementPolicy):
    """Cheap placement, periodic bounded-movement global recompute.

    Parameters
    ----------
    method:
        Declustering method (or registry spec string) used for the
        recompute; default ``"minimax"``.
    every:
        Recompute after this many placements (default 64).
    imbalance:
        Also recompute when ``max_load / quota`` exceeds this factor
        (default 1.5).
    budget:
        Movement budget per recompute, as a fraction of non-empty buckets
        (default 0.2; see :func:`repro.core.redistribute.bounded_reconcile`).
    rng:
        Seed for the recompute method's tie-breaking (each recompute uses a
        fresh child stream, so runs are deterministic).
    """

    name = "recompute-threshold"

    def __init__(self, method="minimax", every: int = 64, imbalance: float = 1.5,
                 budget: float = 0.2, rng=None):
        check_positive_int(every, "every")
        if imbalance < 1.0:
            raise ValueError("imbalance factor must be >= 1")
        if budget < 0:
            raise ValueError("budget must be non-negative")
        if isinstance(method, str):
            from repro.core.registry import make_method

            method = make_method(method)
        self.method = method
        self.every = int(every)
        self.imbalance = float(imbalance)
        self.budget = float(budget)
        self._rng = as_rng(rng)
        self._fallback = RoundRobinLeastLoaded()
        self._since = 0

    def place(self, gf, assignment, new_bucket, n_disks) -> int:
        self._since += 1
        return self._fallback.place(gf, assignment, new_bucket, n_disks)

    def maintain(self, gf, assignment, n_disks) -> list[tuple[int, int]]:
        sizes = gf.bucket_sizes()
        load = _loads(assignment, sizes, n_disks)
        quota = -(-int((sizes > 0).sum()) // n_disks)
        if self._since < self.every and load.max() <= self.imbalance * quota:
            return []
        self._since = 0
        target = self.method.assign(gf, n_disks, rng=self._rng)
        merged, moved = bounded_reconcile(assignment, target, self.budget, sizes=sizes)
        return [(int(b), int(merged[b])) for b in moved]


#: name -> zero-argument factory of the online placement policies.
PLACEMENT_POLICIES = {
    RoundRobinLeastLoaded.name: RoundRobinLeastLoaded,
    ProximitySteal.name: ProximitySteal,
    RecomputeOnThreshold.name: RecomputeOnThreshold,
}


def make_placement(spec) -> PlacementPolicy:
    """Build a placement policy from a name or pass an instance through."""
    if isinstance(spec, PlacementPolicy):
        return spec
    try:
        return PLACEMENT_POLICIES[spec]()
    except KeyError:
        raise ValueError(
            f"unknown placement policy {spec!r}; known: {sorted(PLACEMENT_POLICIES)}"
        ) from None
