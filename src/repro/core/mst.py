"""Minimal-spanning-tree declustering (Fang, Lee & Chang, VLDB 1986).

The MST variant of the similarity-based family: build a minimum spanning
tree under the dissimilarity ``1 - proximity``, decompose it into connected
groups of (at most) M mutually similar buckets, and spread each group across
distinct disks.  Because the tree cannot always be carved into groups of
exactly M, some groups are short and disk loads drift — the balance drawback
the paper cites ("MST does not guarantee that the partitions are balanced").
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.core.base import DeclusteringMethod, validate_assignment
from repro.core.proximity import proximity_index
from repro.gridfile.gridfile import GridFile

__all__ = ["MSTDecluster", "prim_mst", "tree_groups"]


def prim_mst(lo: np.ndarray, hi: np.ndarray, lengths) -> np.ndarray:
    """Prim's MST over boxes with edge cost ``1 - proximity``.

    O(n²) vectorized.  Returns ``parent`` with ``parent[0] == -1`` (vertex 0
    is the root) and ``parent[v]`` the tree parent of every other vertex.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    n = lo.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    if n <= 1:
        return parent
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    best_cost = 1.0 - proximity_index(lo[0], hi[0], lo, hi, lengths)
    best_from = np.zeros(n, dtype=np.int64)
    best_cost[0] = np.inf
    for _ in range(n - 1):
        v = int(np.argmin(best_cost))
        in_tree[v] = True
        parent[v] = best_from[v]
        best_cost[v] = np.inf
        cost = 1.0 - proximity_index(lo[v], hi[v], lo, hi, lengths)
        closer = cost < best_cost
        closer &= ~in_tree
        best_cost[closer] = cost[closer]
        best_from[closer] = v
    return parent


def tree_groups(parent: np.ndarray, group_size: int) -> list[np.ndarray]:
    """Carve a tree into connected groups of at most ``group_size`` vertices.

    Standard postorder peeling: walking children-first, whenever an
    accumulated connected component reaches ``group_size`` vertices it is cut
    off as a group.  Leftover fragments become (smaller) groups of their own.
    """
    n = parent.shape[0]
    children: list[list[int]] = [[] for _ in range(n)]
    root = 0
    for v in range(n):
        if parent[v] < 0:
            root = v
        else:
            children[parent[v]].append(v)

    groups: list[np.ndarray] = []
    pending: dict[int, list[int]] = {}

    # Iterative postorder.
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        v, processed = stack.pop()
        if not processed:
            stack.append((v, True))
            for c in children[v]:
                stack.append((c, False))
            continue
        bundle = [v]
        for c in children[v]:
            bundle.extend(pending.pop(c, []))
            if len(bundle) >= group_size:
                groups.append(np.asarray(bundle[:group_size], dtype=np.int64))
                bundle = bundle[group_size:]
        pending[v] = bundle
    rest = pending.pop(root, [])
    if rest:
        groups.append(np.asarray(rest, dtype=np.int64))
    return groups


class MSTDecluster(DeclusteringMethod):
    """MST-based similarity declustering: groups of M neighbours, dealt out.

    Each group's members go to distinct disks; the disks for short groups
    are chosen greedily least-loaded, so loads can drift — reproducing the
    imbalance the paper attributes to MST.
    """

    name = "MST"

    def assign(self, gf: GridFile, n_disks: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        lo, hi = gf.bucket_regions()
        nonempty = gf.nonempty_bucket_ids()
        parent = prim_mst(lo[nonempty], hi[nonempty], gf.scales.lengths)
        groups = tree_groups(parent, n_disks)
        assignment = np.zeros(gf.n_buckets, dtype=np.int64)
        load = np.zeros(n_disks, dtype=np.int64)
        for g in groups:
            # Spread the group over the currently least-loaded disks.
            disks = np.argsort(load, kind="stable")[: g.size]
            perm = rng.permutation(g.size)
            assignment[nonempty[g[perm]]] = disks
            load[disks] += 1
        empty = np.setdiff1d(np.arange(gf.n_buckets), nonempty)
        assignment[empty] = np.arange(empty.size) % n_disks
        return validate_assignment(assignment, gf.n_buckets, n_disks)
