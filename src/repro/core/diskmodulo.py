"""Disk modulo (DM) declustering and its generalized form (Du & Sobolewski,
TODS 1982).

Cell ``[i_1, ..., i_d]`` goes to disk ``(i_1 + ... + i_d) mod M``.  Strictly
optimal for broad classes of partial-match queries; the paper shows (Theorem
1 and Figure 4) that its *range-query* performance saturates once the number
of disks exceeds the query side length.

:class:`GeneralizedDiskModulo` is Du & Sobolewski's GDM family:
``(Σ a_k · i_k) mod M`` with per-dimension coefficients.  Coprime,
pairwise-distinct coefficients break the diagonal structure that makes plain
DM collapse on square range queries, at the cost of some partial-match
optimality — measured in ``benchmarks/bench_ext_methods.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import IndexBasedMethod

__all__ = ["DiskModulo", "GeneralizedDiskModulo", "fibonacci_coefficients"]


class DiskModulo(IndexBasedMethod):
    """DM: disk = (sum of cell coordinates) mod M."""

    base_name = "DM"

    def cell_disks(self, cells: np.ndarray, n_disks: int, shape) -> np.ndarray:
        cells = np.asarray(cells, dtype=np.int64)
        return cells.sum(axis=1) % n_disks


def fibonacci_coefficients(dims: int) -> tuple[int, ...]:
    """Default GDM coefficients: 1, 2, 3, 5, 8, ... (consecutive Fibonacci).

    Consecutive Fibonacci numbers are coprime, so no pair of dimensions
    aliases onto the same residue pattern for any disk count.
    """
    a, b = 1, 2
    out = []
    for _ in range(dims):
        out.append(a)
        a, b = b, a + b
    return tuple(out)


class GeneralizedDiskModulo(IndexBasedMethod):
    """GDM: disk = ``(Σ a_k · i_k) mod M`` with per-dimension coefficients.

    Parameters
    ----------
    conflict:
        Conflict-resolution heuristic (as for every index-based scheme).
    coefficients:
        Per-dimension integer coefficients; ``None`` selects the Fibonacci
        defaults sized to the grid at assignment time.  ``(1, 1, ..., 1)``
        recovers plain DM.
    """

    base_name = "GDM"

    def __init__(self, conflict: str = "data_balance", coefficients=None):
        super().__init__(conflict)
        if coefficients is not None:
            coefficients = tuple(int(c) for c in coefficients)
            if not coefficients or any(c < 1 for c in coefficients):
                raise ValueError("coefficients must be positive integers")
        self.coefficients = coefficients

    def _coeffs(self, dims: int) -> np.ndarray:
        if self.coefficients is None:
            return np.asarray(fibonacci_coefficients(dims), dtype=np.int64)
        if len(self.coefficients) != dims:
            raise ValueError(
                f"got {len(self.coefficients)} coefficients for {dims} dimensions"
            )
        return np.asarray(self.coefficients, dtype=np.int64)

    def cell_disks(self, cells: np.ndarray, n_disks: int, shape) -> np.ndarray:
        cells = np.asarray(cells, dtype=np.int64)
        return (cells * self._coeffs(cells.shape[1])).sum(axis=1) % n_disks
