"""Fieldwise XOR (FX) declustering (Kim & Pramanik, SIGMOD 1988).

Cell ``[i_1, ..., i_d]`` goes to disk ``(i_1 XOR ... XOR i_d) mod M``.  When
the number of disks and field sizes are powers of two, FX is optimal for a
superset of the partial-match queries DM is optimal for; the paper's Theorem
2 bounds its limited range-query scalability.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import IndexBasedMethod

__all__ = ["FieldwiseXor"]


class FieldwiseXor(IndexBasedMethod):
    """FX: disk = (bitwise XOR of cell coordinates) mod M."""

    base_name = "FX"

    def cell_disks(self, cells: np.ndarray, n_disks: int, shape) -> np.ndarray:
        cells = np.asarray(cells, dtype=np.int64)
        return np.bitwise_xor.reduce(cells, axis=1) % n_disks
