"""Disk service-time model.

Mid-1990s commodity disk, matching the paper's testbed era: a block read
costs a positioning overhead (seek + rotational latency) plus transfer.
Within one request, blocks beyond the first are charged a reduced
positioning cost (the paper's buckets of one grid region tend to be laid out
near each other).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskModel"]


@dataclass(frozen=True)
class DiskModel:
    """Per-request disk timing.

    Parameters
    ----------
    position_time:
        Seek + rotational latency of the first block of a request (seconds).
    reposition_time:
        Positioning cost of each subsequent block in the same request.
    transfer_rate:
        Sustained transfer rate, bytes/second.
    block_bytes:
        Block (bucket) size in bytes; the paper uses 4 KB buckets for the
        2-d experiments and 8 KB for the SP-2 file.
    """

    position_time: float = 0.012
    reposition_time: float = 0.006
    transfer_rate: float = 4.0e6
    block_bytes: int = 8192

    def service_time(self, n_blocks: int, slowdown: float = 1.0) -> float:
        """Time to read ``n_blocks`` blocks in one request.

        ``slowdown`` is a degraded-mode multiplier (>= 1 in practice): a disk
        under a fault-injected slowdown serves the same request proportionally
        slower.  The healthy value 1.0 leaves the model bit-for-bit unchanged.
        """
        if n_blocks < 0:
            raise ValueError(f"negative block count {n_blocks}")
        if slowdown <= 0:
            raise ValueError(f"slowdown multiplier must be positive, got {slowdown}")
        if n_blocks == 0:
            return 0.0
        transfer = n_blocks * self.block_bytes / self.transfer_rate
        positioning = self.position_time + (n_blocks - 1) * self.reposition_time
        return (positioning + transfer) * slowdown
