"""Pluggable pending-event queues for the discrete-event simulator.

The DES kernel pops events in strict ``(time, seq)`` order — ``seq`` is the
insertion counter, so equal-time events fire first-scheduled-first.  Both
queues here implement exactly that total order, so **event ordering (and
therefore every simulated result) is identical whichever queue runs**; the
golden neutrality pins of ``tests/test_engine_neutrality.py`` hold under
either, and ``tests/test_eventq.py`` checks order-equivalence directly on
adversarial schedules.

* :class:`HeapEventQueue` — the classic binary heap (``heapq``), O(log n)
  per operation.  The default.
* :class:`CalendarEventQueue` — a calendar queue (R. Brown, CACM 1988):
  events hash by time into an array of day-buckets of width ``w``; pushes
  bisect into a short sorted bucket and pops scan forward from the current
  day, giving amortized O(1) per operation when event times are roughly
  uniform over a bounded horizon — the open-system cluster's arrival
  pattern.  The bucket count and width resize automatically as the queue
  grows and shrinks (deterministically: width is estimated from the gaps
  of the earliest pending events, never from wall-clock or randomness).

Select per simulator (``Simulator(queue="calendar")``), per cluster run
(``ClusterParams(des_queue="calendar")``), or process-wide with the
``REPRO_DES_QUEUE`` environment variable.

Queue items are the simulator's ``(time, seq, Event, callback, args)``
tuples.  Because ``(time, seq)`` is unique, tuple comparison never reaches
the non-comparable payload — the same property ``heapq`` already relies
on.  Cancelled events are *not* removed eagerly; the simulator discards
them at pop time, exactly as with the heap.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort

__all__ = [
    "HeapEventQueue",
    "CalendarEventQueue",
    "EVENT_QUEUES",
    "make_event_queue",
    "DES_QUEUE_ENV",
]

#: Environment variable selecting the process-wide default queue.
DES_QUEUE_ENV = "REPRO_DES_QUEUE"


class HeapEventQueue:
    """Binary-heap pending-event queue (the legacy default)."""

    __slots__ = ("_heap",)

    def __init__(self):
        self._heap: list = []

    def push(self, item) -> None:
        heapq.heappush(self._heap, item)

    def peek(self):
        """The minimum item, or ``None`` when empty (not removed)."""
        return self._heap[0] if self._heap else None

    def pop(self):
        """Remove and return the minimum item."""
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self):
        return iter(self._heap)


class CalendarEventQueue:
    """Calendar-queue pending-event queue (amortized O(1) push/pop).

    Parameters
    ----------
    n_buckets:
        Initial day-bucket count (power of two; grows/shrinks with load).
    width:
        Initial day width in simulated seconds (re-estimated on resize).
    """

    __slots__ = ("_buckets", "_nb", "_width", "_size", "_floor")

    #: Resize thresholds: grow when size > 2·buckets, shrink below ½·buckets.
    _GROW_FACTOR = 2.0
    _SHRINK_FACTOR = 0.5
    #: Events sampled (from the earliest pending) for the width estimate.
    _SAMPLE = 32

    def __init__(self, n_buckets: int = 4, width: float = 1.0):
        self._nb = max(2, int(n_buckets))
        self._width = float(width)
        self._buckets: list[list] = [[] for _ in range(self._nb)]
        self._size = 0
        #: Lower bound on the minimum pending time (the last popped time);
        #: the pop scan starts from its day.
        self._floor = 0.0

    # ------------------------------------------------------------- helpers

    def _bucket_of(self, time: float) -> int:
        return int(time / self._width) % self._nb

    def _resize(self, n_buckets: int) -> None:
        items = [item for b in self._buckets for item in b]
        items.sort()
        # Estimate the new day width as twice the mean gap between the
        # earliest pending events (Brown's rule of thumb): a day then holds
        # a handful of events, keeping both the push bisect and the pop
        # scan O(1).  Fully deterministic — derived from queue state only.
        head = items[: self._SAMPLE]
        if len(head) >= 2:
            span = head[-1][0] - head[0][0]
            gap = span / (len(head) - 1)
            width = 2.0 * gap if gap > 0.0 else self._width
        else:
            width = self._width
        self._nb = max(2, int(n_buckets))
        self._width = max(width, 1e-9)
        self._buckets = [[] for _ in range(self._nb)]
        for item in items:
            # Items arrive pre-sorted, so plain append keeps buckets sorted.
            self._buckets[self._bucket_of(item[0])].append(item)

    # ----------------------------------------------------------- interface

    def push(self, item) -> None:
        insort(self._buckets[self._bucket_of(item[0])], item)
        self._size += 1
        if item[0] < self._floor:
            # The simulator admits events a hair (1e-12) in the past; keep
            # the floor a true lower bound so the pop scan cannot start one
            # day late and return an out-of-order item.
            self._floor = item[0]
        if self._size > self._GROW_FACTOR * self._nb:
            self._resize(self._nb * 2)

    def _min_bucket(self) -> int:
        """Index of the bucket holding the minimum item (queue non-empty)."""
        nb, w = self._nb, self._width
        day = int(self._floor / w)
        # Walk at most one full year from the floor's day: the minimum item
        # lives in the first non-empty bucket whose head falls inside the
        # day currently mapped to it.
        for step in range(nb):
            b = self._buckets[(day + step) % nb]
            if b and b[0][0] < (day + step + 1) * w:
                return (day + step) % nb
        # Sparse regime (next event more than a year ahead): direct search.
        best = -1
        for i, b in enumerate(self._buckets):
            if b and (best < 0 or b[0] < self._buckets[best][0]):
                best = i
        return best

    def peek(self):
        """The minimum item, or ``None`` when empty (not removed)."""
        if self._size == 0:
            return None
        return self._buckets[self._min_bucket()][0]

    def pop(self):
        """Remove and return the minimum item."""
        if self._size == 0:
            raise IndexError("pop from an empty CalendarEventQueue")
        item = self._buckets[self._min_bucket()].pop(0)
        self._size -= 1
        self._floor = item[0]
        if self._nb > 4 and self._size < self._SHRINK_FACTOR * self._nb:
            self._resize(self._nb // 2)
        return item

    def __len__(self) -> int:
        return self._size

    def __iter__(self):
        for b in self._buckets:
            yield from b


EVENT_QUEUES = {
    "heap": HeapEventQueue,
    "calendar": CalendarEventQueue,
}


def make_event_queue(name: "str | None"):
    """Build a pending-event queue by name.

    ``None`` consults the ``REPRO_DES_QUEUE`` environment variable and
    falls back to ``"heap"`` (the legacy behaviour).
    """
    if name is None:
        name = os.environ.get(DES_QUEUE_ENV) or "heap"
    try:
        return EVENT_QUEUES[name]()
    except KeyError:
        raise ValueError(
            f"unknown event queue {name!r}; choose from {sorted(EVENT_QUEUES)}"
        ) from None
