"""Replication and degraded-mode routing for declustered grid files.

A disk farm that serves long-running analyses needs to survive disk loss.
The classic schemes compose naturally with declustering:

* **chained** (Hsiao & DeWitt): the backup copy of disk ``i``'s buckets
  lives on disk ``(i + 1) mod M``.  A single failure shifts one disk's load
  onto its successor; the extra load can cascade-balance if reads are split.
* **mirrored**: disks are paired (``i`` with ``i XOR 1``); a failure doubles
  the partner's load but never touches anyone else.

:func:`apply_failures` turns a primary assignment plus a set of failed disks
into the *effective* assignment served in degraded mode; the result feeds
straight into :class:`repro.parallel.ParallelGridFile` or
:func:`repro.sim.evaluate_queries`, so degraded response time falls out of
the same machinery as the healthy numbers
(``benchmarks/bench_ext_failures.py``).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int

__all__ = ["replica_assignment", "apply_failures", "effective_disk", "SCHEMES"]

#: Supported replication schemes.
SCHEMES = ("chained", "mirrored")


def replica_assignment(assignment: np.ndarray, n_disks: int, scheme: str = "chained") -> np.ndarray:
    """Backup disk of every bucket under the given replication scheme.

    Parameters
    ----------
    assignment:
        ``(n_buckets,)`` primary disk ids.
    n_disks:
        Number of disks M (mirrored requires an even M).
    scheme:
        ``"chained"`` or ``"mirrored"``.
    """
    check_positive_int(n_disks, "n_disks")
    assignment = np.asarray(assignment, dtype=np.int64)
    if scheme == "chained":
        if n_disks < 2:
            raise ValueError("chained replication needs at least 2 disks")
        return (assignment + 1) % n_disks
    if scheme == "mirrored":
        if n_disks % 2:
            raise ValueError("mirrored replication needs an even number of disks")
        return assignment ^ 1
    raise ValueError(f"unknown replication scheme {scheme!r}; choose from {SCHEMES}")


def effective_disk(primary: int, n_disks: int, failed, scheme: str = "chained") -> "int | None":
    """Live disk serving one bucket whose primary is ``primary``.

    Returns the primary itself when it is up, the replica location otherwise,
    or ``None`` when the bucket is unreachable under the scheme:

    * **chained** — walk ``(d + 1) mod M`` past *consecutive* failed disks
      (cascaded failover: each surviving disk re-exports the chain segment
      behind it), so data is lost only when every disk is down.
    * **mirrored** — only the XOR-partner holds a copy; both down = lost.
    """
    primary = int(primary)
    failed = {int(f) for f in failed}
    if scheme == "chained":
        if n_disks < 2:
            raise ValueError("chained replication needs at least 2 disks")
        if primary not in failed:
            return primary
        d = (primary + 1) % n_disks
        while d != primary:
            if d not in failed:
                return d
            d = (d + 1) % n_disks
        return None
    if scheme == "mirrored":
        if n_disks % 2:
            raise ValueError("mirrored replication needs an even number of disks")
        if primary not in failed:
            return primary
        partner = primary ^ 1
        return None if partner in failed else partner
    raise ValueError(f"unknown replication scheme {scheme!r}; choose from {SCHEMES}")


def apply_failures(
    assignment: np.ndarray,
    n_disks: int,
    failed,
    scheme: str = "chained",
) -> np.ndarray:
    """Effective read assignment when ``failed`` disks are down.

    Buckets whose primary disk failed are served from their backup copy.
    Chained replication fails over *cascadingly*: when the immediate backup
    ``(d + 1) mod M`` is also down, the walk continues to the next live disk,
    so chained data is unreachable only when every disk failed.  Mirrored
    pairs hold the only two copies, so a fully-failed pair loses its buckets.
    Raises ``RuntimeError`` only when some bucket's data is truly
    unreachable.

    Parameters
    ----------
    assignment:
        ``(n_buckets,)`` primary disk ids.
    n_disks:
        Number of disks M.
    failed:
        Iterable of failed disk ids.
    scheme:
        Replication scheme that placed the backups.
    """
    check_positive_int(n_disks, "n_disks")
    assignment = np.asarray(assignment, dtype=np.int64)
    failed = sorted(set(int(f) for f in failed))
    for f in failed:
        if not 0 <= f < n_disks:
            raise ValueError(f"failed disk {f} out of range [0, {n_disks})")
    if not failed:
        # Validate the scheme name even on the trivial path.
        replica_assignment(assignment[:0], n_disks, scheme)
        return assignment.copy()
    if len(failed) >= n_disks:
        raise RuntimeError("every disk failed; no data available")
    # Per-disk redirect table: where disk d's buckets are actually served.
    redirect = np.arange(n_disks, dtype=np.int64)
    lost_disks = []
    for f in failed:
        target = effective_disk(f, n_disks, failed, scheme)
        if target is None:
            lost_disks.append(f)
        else:
            redirect[f] = target
    if lost_disks:
        lost = int(np.isin(assignment, lost_disks).sum())
        raise RuntimeError(
            f"{lost} buckets lost: primary and every replica disk failed"
        )
    return redirect[assignment]
