"""Replication and degraded-mode routing for declustered grid files.

A disk farm that serves long-running analyses needs to survive disk loss.
The classic schemes compose naturally with declustering:

* **chained** (Hsiao & DeWitt): the backup copy of disk ``i``'s buckets
  lives on disk ``(i + 1) mod M``.  A single failure shifts one disk's load
  onto its successor; the extra load can cascade-balance if reads are split.
* **mirrored**: disks are paired (``i`` with ``i XOR 1``); a failure doubles
  the partner's load but never touches anyone else.

:func:`apply_failures` turns a primary assignment plus a set of failed disks
into the *effective* assignment served in degraded mode; the result feeds
straight into :class:`repro.parallel.ParallelGridFile` or
:func:`repro.sim.evaluate_queries`, so degraded response time falls out of
the same machinery as the healthy numbers
(``benchmarks/bench_ext_failures.py``).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int

__all__ = ["replica_assignment", "apply_failures", "SCHEMES"]

#: Supported replication schemes.
SCHEMES = ("chained", "mirrored")


def replica_assignment(assignment: np.ndarray, n_disks: int, scheme: str = "chained") -> np.ndarray:
    """Backup disk of every bucket under the given replication scheme.

    Parameters
    ----------
    assignment:
        ``(n_buckets,)`` primary disk ids.
    n_disks:
        Number of disks M (mirrored requires an even M).
    scheme:
        ``"chained"`` or ``"mirrored"``.
    """
    check_positive_int(n_disks, "n_disks")
    assignment = np.asarray(assignment, dtype=np.int64)
    if scheme == "chained":
        if n_disks < 2:
            raise ValueError("chained replication needs at least 2 disks")
        return (assignment + 1) % n_disks
    if scheme == "mirrored":
        if n_disks % 2:
            raise ValueError("mirrored replication needs an even number of disks")
        return assignment ^ 1
    raise ValueError(f"unknown replication scheme {scheme!r}; choose from {SCHEMES}")


def apply_failures(
    assignment: np.ndarray,
    n_disks: int,
    failed,
    scheme: str = "chained",
) -> np.ndarray:
    """Effective read assignment when ``failed`` disks are down.

    Buckets whose primary disk failed are served from their backup copy.
    Raises ``RuntimeError`` if any bucket's primary *and* backup both failed
    (data unavailable).

    Parameters
    ----------
    assignment:
        ``(n_buckets,)`` primary disk ids.
    n_disks:
        Number of disks M.
    failed:
        Iterable of failed disk ids.
    scheme:
        Replication scheme that placed the backups.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    failed = sorted(set(int(f) for f in failed))
    for f in failed:
        if not 0 <= f < n_disks:
            raise ValueError(f"failed disk {f} out of range [0, {n_disks})")
    if not failed:
        return assignment.copy()
    if len(failed) >= n_disks:
        raise RuntimeError("every disk failed; no data available")
    backup = replica_assignment(assignment, n_disks, scheme)
    failed_mask = np.zeros(n_disks, dtype=bool)
    failed_mask[failed] = True
    out = assignment.copy()
    down = failed_mask[assignment]
    if failed_mask[backup[down]].any():
        lost = int(np.count_nonzero(failed_mask[backup] & down))
        raise RuntimeError(
            f"{lost} buckets lost: primary and backup disks both failed"
        )
    out[down] = backup[down]
    return out
