"""Run statistics: the shared per-query collector and :class:`PerfReport`.

Before the pipeline refactor, the per-query bookkeeping (submission /
completion clocks, communication time, degraded-mode counters) and the
report-building aggregation lived on the engine class and were duplicated
by the online engine's subclass.  :class:`StatsCollector` is the single
home for that state now: both the static and the online drivers write into
one collector through the pipeline, and :meth:`StatsCollector.build_report`
folds it — together with the per-node counters and the metrics registry —
into the :class:`PerfReport` the callers see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PerfReport", "StatsCollector"]

#: Queue-depth histogram bucket bounds (outstanding queries at submit).
QUEUE_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class PerfReport:
    """Results of a cluster run (the Tables 4-5 columns, plus detail)."""

    n_queries: int
    n_nodes: int
    n_disks: int
    #: Sum over queries of ``max_i N_i(q)`` — "response time by definition".
    blocks_fetched: int
    #: Total blocks requested from workers (sum over disks, not max).
    blocks_requested_total: int
    #: Blocks actually read from disk (cache misses).
    blocks_read: int
    #: Seconds of NIC transfer time (requests + replies) including latency.
    comm_time: float
    #: Simulated wall-clock seconds to complete the workload.
    elapsed_time: float
    #: Total qualified records returned.
    records_returned: int
    #: Aggregate worker cache hit rate.
    cache_hit_rate: float
    #: Per-query completion times (simulated clock).
    completion_times: np.ndarray
    #: Per-query latencies (completion - submission).  A shed query's entry
    #: is its time in the admission queue until the shed decision.
    latencies: np.ndarray
    #: Per-node busy fractions of the disk resources (over alive windows).
    disk_utilization: np.ndarray
    #: Coordinator request timeouts observed.
    timeouts: int = 0
    #: Retransmissions to the same node after a timeout.
    retries: int = 0
    #: Requests rerouted to replica disks (suspected/crashed targets).
    failovers: int = 0
    #: Messages dropped by fault-injected lossy links.
    messages_lost: int = 0
    #: Queries aborted because some bucket had no live replica.
    aborted_queries: int = 0
    #: :class:`repro.obs.MetricsRegistry` snapshot of the run (counters,
    #: queue-depth / service-time / latency histograms); deterministic.
    metrics: "dict | None" = None
    #: Queries shed by the admission controller (deadline exceeded before
    #: admission; 0 under the default unbounded admission).
    shed_queries: int = 0
    #: Boolean mask over queries marking the shed ones (None when nothing
    #: could shed — the default admission mode).
    shed_mask: "np.ndarray | None" = None

    @property
    def availability(self) -> float:
        """Fraction of queries answered (1.0 = nothing aborted)."""
        return 1.0 - self.aborted_queries / self.n_queries if self.n_queries else 1.0

    @property
    def served_latencies(self) -> np.ndarray:
        """Latencies of the queries that actually ran (excludes shed ones)."""
        if self.shed_mask is None:
            return self.latencies
        return self.latencies[~self.shed_mask]

    @property
    def mean_latency(self) -> float:
        """Mean per-query latency (seconds)."""
        return float(self.latencies.mean()) if self.latencies.size else 0.0

    @property
    def p95_latency(self) -> float:
        """95th-percentile per-query latency (seconds)."""
        return float(np.percentile(self.latencies, 95)) if self.latencies.size else 0.0

    @property
    def p99_latency(self) -> float:
        """99th-percentile latency over *served* queries (seconds)."""
        lat = self.served_latencies
        return float(np.percentile(lat, 99)) if lat.size else 0.0

    @property
    def shed_fraction(self) -> float:
        """Fraction of the workload shed by admission control."""
        return self.shed_queries / self.n_queries if self.n_queries else 0.0

    @property
    def throughput(self) -> float:
        """Completed queries per simulated second."""
        return self.n_queries / self.elapsed_time if self.elapsed_time > 0 else 0.0

    def row(self) -> tuple:
        """The (blocks, comm seconds, elapsed seconds) row of Tables 4-5."""
        return (self.blocks_fetched, self.comm_time, self.elapsed_time)


class StatsCollector:
    """Per-query bookkeeping shared by the static and online drivers.

    Holds everything :meth:`build_report` needs that is not per-node state:
    submission/completion clocks, wire time, degraded-mode counters and the
    shed set.  The pipeline owns exactly one collector per run.
    """

    def __init__(self, n_queries: int):
        self.n_queries = int(n_queries)
        self.submit_time = np.zeros(self.n_queries)
        self.completion = np.zeros(self.n_queries)
        self.comm_time = 0.0
        self.n_timeouts = 0
        self.n_retries = 0
        self.n_failovers = 0
        self.n_messages_lost = 0
        self.shed: set[int] = set()

    def record_submit(self, qid: int, when: float) -> None:
        """Stamp the user-visible submission instant of query ``qid``."""
        self.submit_time[qid] = when

    def record_completion(self, qid: int, when: float) -> None:
        """Stamp the completion instant of query ``qid``."""
        self.completion[qid] = when

    def record_shed(self, qid: int, arrival: float, when: float) -> None:
        """Mark query ``qid`` shed at ``when`` after arriving at ``arrival``."""
        self.submit_time[qid] = arrival
        self.completion[qid] = when
        self.shed.add(qid)

    def latency_of(self, qid: int) -> float:
        """Completion minus submission for query ``qid``."""
        return float(self.completion[qid] - self.submit_time[qid])

    def build_report(
        self,
        *,
        n_nodes: int,
        n_disks: int,
        nodes,
        plans,
        metrics,
        aborted,
        injector=None,
        tracer=None,
        now: "float | None" = None,
    ) -> PerfReport:
        """Fold the run into a :class:`PerfReport`.

        Parameters mirror the pipeline's end-of-run state: the worker
        ``nodes`` (block/cache counters, alive windows), the per-query
        ``plans`` (``None`` entries allowed for never-planned queries), the
        run's :class:`~repro.obs.MetricsRegistry`, the ``aborted`` qid set,
        the optional fault ``injector`` (applied-event counters) and an
        optional *enabled* ``tracer`` for the run-end records (stamped at
        simulated time ``now`` when given).
        """
        total_hits = sum(n.cache.hits for n in nodes)
        total_access = sum(n.cache.hits + n.cache.misses for n in nodes)
        elapsed = float(self.completion.max()) if self.n_queries else 0.0
        # Utilization over each node's *alive* window, so a crashed node's
        # dead time doesn't dilute its busy fraction.
        windows = [n.alive_window(elapsed) for n in nodes]
        disk_util = np.array(
            [
                sum(d.busy_time for d in n.disks) / (w * len(n.disks)) if w > 0 else 0.0
                for n, w in zip(nodes, windows)
            ]
        )
        # Aggregate counters (run totals; the live instruments cover queue
        # depth, latency and per-disk service time).
        m = metrics
        m.counter("blocks.requested").inc(sum(n.blocks_requested for n in nodes))
        m.counter("blocks.read").inc(sum(n.blocks_read for n in nodes))
        m.counter("cache.hits").inc(total_hits)
        m.counter("cache.misses").inc(total_access - total_hits)
        m.counter("requests.timeout").inc(self.n_timeouts)
        m.counter("requests.retry").inc(self.n_retries)
        m.counter("requests.failover").inc(self.n_failovers)
        m.counter("messages.lost").inc(self.n_messages_lost)
        m.counter("queries.aborted").inc(len(aborted))
        if self.shed:
            m.counter("queries.shed").inc(len(self.shed))
        if injector is not None:
            for kind, count in injector.applied.items():
                m.counter(f"faults.applied.{kind}").inc(count)
        snapshot = m.snapshot()
        if tracer is not None:
            tracer.event(
                "run.end",
                now if now is not None else elapsed,
                entity="run",
                elapsed=elapsed,
            )
            tracer.metrics(snapshot)
        shed_mask = None
        if self.shed:
            shed_mask = np.zeros(self.n_queries, dtype=bool)
            shed_mask[sorted(self.shed)] = True
        return PerfReport(
            n_queries=self.n_queries,
            n_nodes=n_nodes,
            n_disks=n_disks,
            blocks_fetched=sum(
                p.response_by_definition
                for qid, p in enumerate(plans)
                if p is not None and qid not in self.shed
            ),
            blocks_requested_total=sum(n.blocks_requested for n in nodes),
            blocks_read=sum(n.blocks_read for n in nodes),
            comm_time=self.comm_time,
            elapsed_time=elapsed,
            records_returned=sum(
                p.total_qualified
                for qid, p in enumerate(plans)
                if p is not None and qid not in self.shed
            ),
            cache_hit_rate=(total_hits / total_access) if total_access else 0.0,
            completion_times=self.completion,
            latencies=self.completion - self.submit_time,
            disk_utilization=disk_util,
            timeouts=self.n_timeouts,
            retries=self.n_retries,
            failovers=self.n_failovers,
            messages_lost=self.n_messages_lost,
            aborted_queries=len(aborted),
            metrics=snapshot,
            shed_queries=len(self.shed),
            shed_mask=shed_mask,
        )
