"""Admission control for open-system runs (arrival → admit/queue/shed).

:meth:`~repro.parallel.engine.runners.ParallelGridFile.run_open` hands the
Poisson arrival instants to a controller; the controller decides when each
query actually enters the pipeline:

``unbounded``
    The legacy behaviour: every query is submitted exactly at its arrival
    instant no matter how many are already in flight — queueing happens
    implicitly at the simulated resources.  Past the saturation rate,
    latency grows without bound over the run.
``bounded``
    At most ``max_inflight`` queries run concurrently; later arrivals wait
    in an admission queue (FIFO).  Latency is measured from *arrival*, so
    admission waiting is visible in the percentiles.  With a ``deadline``,
    a query that has already waited longer than the deadline when its turn
    comes is **shed** — recorded, never executed — which bounds the tail
    latency of the queries actually served at the cost of availability.

Use :func:`make_admission` to build the controller a
:class:`~repro.parallel.engine.params.ClusterParams` asks for.
"""

from __future__ import annotations

from collections import deque

__all__ = ["AdmissionController", "UnboundedAdmission", "BoundedAdmission", "make_admission"]


class AdmissionController:
    """Decides when (and whether) each arriving query enters the pipeline."""

    name = "base"

    def __init__(self, pipeline):
        self.pipe = pipeline

    def start(self, arrivals) -> None:
        """Schedule the workload's arrival instants on the simulator."""
        raise NotImplementedError

    def query_done(self, qid: int) -> None:
        """Pipeline callback: query ``qid`` finished (admit the next?)."""


class UnboundedAdmission(AdmissionController):
    """Submit every query at its arrival instant (the legacy behaviour)."""

    name = "unbounded"

    def start(self, arrivals):
        for qid, t in enumerate(arrivals):
            self.pipe.sim.schedule_at(float(t), self.pipe.submit, qid)


class BoundedAdmission(AdmissionController):
    """FIFO admission queue with a concurrency bound and optional deadline."""

    name = "bounded"

    def __init__(self, pipeline, max_inflight: int, deadline: "float | None"):
        super().__init__(pipeline)
        self.max_inflight = int(max_inflight)
        self.deadline = deadline
        self.inflight = 0
        self.waiting: deque[tuple[int, float]] = deque()

    def start(self, arrivals):
        for qid, t in enumerate(arrivals):
            self.pipe.sim.schedule_at(float(t), self._arrive, qid)

    def _arrive(self, qid: int) -> None:
        if self.inflight < self.max_inflight:
            self._admit(qid, self.pipe.sim.now)
        else:
            self.waiting.append((qid, self.pipe.sim.now))

    def _admit(self, qid: int, arrival: float) -> None:
        self.inflight += 1
        self.pipe.submit(qid, arrival=arrival)

    def _shed(self, qid: int, arrival: float) -> None:
        pipe = self.pipe
        pipe.stats.record_shed(qid, arrival, pipe.sim.now)
        if pipe.trace:
            pipe.tracer.event(
                "query.shed",
                pipe.sim.now,
                entity="coord",
                qid=qid,
                waited=pipe.sim.now - arrival,
            )

    def query_done(self, qid: int) -> None:
        self.inflight -= 1
        # Shed decisions happen when a slot frees up: anything that has
        # already overstayed its deadline is dropped, then one query admits.
        while self.waiting:
            nxt, arrival = self.waiting.popleft()
            if self.deadline is not None and self.pipe.sim.now - arrival > self.deadline:
                self._shed(nxt, arrival)
                continue
            self._admit(nxt, arrival)
            break


def make_admission(pipeline, params) -> AdmissionController:
    """The controller ``params`` asks for, bound to ``pipeline``.

    ``deadline`` without ``max_inflight`` implies a bound of ``2 *
    n_nodes`` concurrent queries (shedding needs an admission queue to
    shed from).
    """
    if params.max_inflight is None and params.deadline is None:
        return UnboundedAdmission(pipeline)
    k = params.max_inflight
    if k is None:
        k = 2 * pipeline.n_nodes
    return BoundedAdmission(pipeline, k, params.deadline)
