"""Pluggable replica-selection policies for the request router.

When :attr:`~repro.parallel.engine.params.ClusterParams.replication` places
a backup copy of every bucket (chained or mirrored), the router has a
choice on every read: serve it from the primary copy or from the replica.
The policies here make that seam explicit — the metrics framing follows
*Replication in Data Grids: Metrics and Strategies* (see PAPERS.md):

``primary-only``
    The legacy behaviour: healthy reads always hit the primary disk;
    replicas serve *failover* traffic only (suspected/crashed targets).
    Works with or without replication and is byte-for-byte identical to
    the pre-refactor engine.
``least-loaded-alive``
    Every bucket read goes to whichever live copy (primary or backup) has
    been handed the fewest blocks so far this run — cumulative
    load-balancing that also absorbs a dead node's traffic without
    timeouts ever firing.
``fastest-estimated``
    Every bucket read goes to the live copy whose disk is estimated to
    free up first (current reservation horizon plus queued service) —
    instantaneous load-balancing keyed to the scheduling state.

Use :func:`make_replica_policy` to resolve a name (raises ``ValueError``
with the available names for unknown ones).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.message import BlockRequest
from repro.parallel.replication import effective_disk

__all__ = [
    "ReplicaSelector",
    "PrimaryOnlySelector",
    "LeastLoadedSelector",
    "FastestEstimatedSelector",
    "REPLICA_POLICIES",
    "make_replica_policy",
    "regroup_requests",
]


def regroup_requests(pipe, plan, bucket_ids, choose) -> "list | None":
    """Group per-bucket disk choices into per-node block requests.

    ``choose(bucket) -> global disk | None``; ``None`` means no live copy
    can serve the bucket and the whole routing fails (the caller aborts).
    Shared by the balancing replica selectors and the autoscale router —
    the grouping and field computation are byte-identical to the original
    ``_BalancingSelector`` implementation.
    """
    by_node: dict[int, list] = {}
    for b in bucket_ids:
        b = int(b)
        disk = choose(b)
        if disk is None:
            return None
        by_node.setdefault(pipe.coordinator.node_of_disk(disk), []).append((b, disk))
    qid = plan.query_id
    out = []
    for node in sorted(by_node):
        pairs = by_node[node]
        out.append(
            BlockRequest(
                query_id=qid,
                node_id=node,
                bucket_ids=np.array([b for b, _ in pairs], dtype=np.int64),
                candidates=sum(plan.candidates_per_bucket[b] for b, _ in pairs),
                qualified=sum(plan.qualified_per_bucket[b] for b, _ in pairs),
                attempt=0,
                target_disks=np.array([d for _, d in pairs], dtype=np.int64),
            )
        )
    return out


class ReplicaSelector:
    """Chooses the disk serving each bucket read (one instance per run)."""

    name = "base"
    #: Whether the policy reads from replica copies on healthy paths
    #: (and therefore requires ``ClusterParams.replication``).
    needs_replication = False

    def bind(self, pipeline) -> None:
        """Attach to a pipeline run (called once, before any routing)."""
        self.pipe = pipeline

    def route(self, plan, requests) -> "list | None":
        """Map a plan's primary-grouped requests to the requests actually
        sent; ``None`` means some bucket is unreachable (abort)."""
        raise NotImplementedError

    def failover(self, plan, req) -> "list | None":
        """Re-route one timed-out request's buckets after its target node
        was suspected; ``None`` means no live copy remains (abort)."""
        raise NotImplementedError


class PrimaryOnlySelector(ReplicaSelector):
    """Reads hit the primary; replicas serve failover traffic only."""

    name = "primary-only"

    def route(self, plan, requests):
        pipe = self.pipe
        if not pipe.suspected:
            return requests
        out = []
        failed = pipe.suspected_disks()
        for req in requests:
            if req.node_id not in pipe.suspected:
                out.append(req)
                continue
            if pipe.params.replication is None:
                return None
            rerouted = pipe.coordinator.failover_requests(
                plan, req, failed, pipe.params.replication
            )
            if rerouted is None:
                return None
            pipe.stats.n_failovers += 1
            out.extend(rerouted)
        return out

    def failover(self, plan, req):
        pipe = self.pipe
        if pipe.params.replication is None:
            return None
        return pipe.coordinator.failover_requests(
            plan, req, pipe.suspected_disks(), pipe.params.replication
        )


class _BalancingSelector(ReplicaSelector):
    """Shared routing for policies that spread reads over live copies."""

    needs_replication = True

    def _choose(self, primary: int, failed: set) -> "int | None":
        """The disk serving one bucket whose primary copy is ``primary``."""
        pipe = self.pipe
        backup = effective_disk(
            primary, pipe.n_disks, failed | {primary}, pipe.params.replication
        )
        candidates = [d for d in (primary, backup) if d is not None and d not in failed]
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        return self._pick(candidates, primary)

    def _pick(self, candidates: list, primary: int) -> int:
        raise NotImplementedError

    def _regroup(self, plan, bucket_ids) -> "list | None":
        """Select a disk per bucket and regroup into per-node requests."""
        pipe = self.pipe
        failed = pipe.suspected_disks()
        return regroup_requests(
            pipe,
            plan,
            bucket_ids,
            lambda b: self._choose(int(pipe.coordinator.assignment[b]), failed),
        )

    def route(self, plan, requests):
        bids = [int(b) for req in requests for b in req.bucket_ids]
        return self._regroup(plan, bids)

    def failover(self, plan, req):
        return self._regroup(plan, req.bucket_ids)


class LeastLoadedSelector(_BalancingSelector):
    """Pick the live copy handed the fewest blocks so far (ties: primary)."""

    name = "least-loaded-alive"

    def bind(self, pipeline):
        super().bind(pipeline)
        self._load = [0] * pipeline.n_disks

    def _pick(self, candidates, primary):
        best = min(candidates, key=lambda d: (self._load[d], d != primary, d))
        self._load[best] += 1
        return best


class FastestEstimatedSelector(_BalancingSelector):
    """Pick the live copy whose disk frees up first (ties: primary)."""

    name = "fastest-estimated"

    def _pick(self, candidates, primary):
        pipe = self.pipe
        now = pipe.sim.now
        return min(
            candidates,
            key=lambda d: (pipe.disk_queue_of(d).estimated_free(now), d != primary, d),
        )


#: Registered replica-selection policies, by name.
REPLICA_POLICIES = {
    PrimaryOnlySelector.name: PrimaryOnlySelector,
    LeastLoadedSelector.name: LeastLoadedSelector,
    FastestEstimatedSelector.name: FastestEstimatedSelector,
}


def make_replica_policy(name: str) -> ReplicaSelector:
    """A fresh selector instance for the policy registered under ``name``.

    Raises ``ValueError`` listing the known policies otherwise.
    """
    try:
        cls = REPLICA_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replica policy {name!r}; choose from {sorted(REPLICA_POLICIES)}"
        ) from None
    return cls()
