"""Cost-model and pipeline-policy knobs of the simulated cluster.

:class:`ClusterParams` collects everything a run needs: the hardware cost
models (disk, network, cache, CPU constants), the degraded-mode protocol
settings (replication, timeouts, retries), and the three pluggable
pipeline seams introduced by the request-pipeline refactor:

* ``scheduler`` — the per-disk queue discipline
  (:mod:`repro.parallel.engine.scheduling`);
* ``replica_policy`` — how the router picks among replica copies
  (:mod:`repro.parallel.engine.replicas`);
* ``max_inflight`` / ``deadline`` — the open-system admission controller
  (:mod:`repro.parallel.engine.admission`).

The defaults (``fifo`` scheduling, ``primary-only`` replica selection,
unbounded admission) reproduce the pre-refactor engine bit for bit — the
repo's neutrality-pin pattern (``tests/test_engine_neutrality.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.disk import DiskModel
from repro.parallel.network import NetworkModel

__all__ = ["ClusterParams", "DEFAULT_REQUEST_TIMEOUT", "validate_params"]

#: Request timeout slack used when faults are injected but none was configured.
DEFAULT_REQUEST_TIMEOUT = 0.05


@dataclass(frozen=True)
class ClusterParams:
    """Cost-model knobs of the simulated cluster (SP-2-era defaults)."""

    disk: DiskModel = field(default_factory=DiskModel)
    network: NetworkModel = field(default_factory=NetworkModel)
    #: LRU cache capacity per node, in blocks (0 disables caching).
    cache_blocks: int = 512
    #: Disks per node (paper: 1; its future-work configuration: 7).
    disks_per_node: int = 1
    #: CPU time to filter one candidate record (seconds).
    cpu_filter_per_record: float = 2e-6
    #: Bytes per record on the wire.
    record_bytes: int = 40
    #: Fixed bytes per request/reply message.
    header_bytes: int = 64
    #: Bytes per bucket id in a request message.
    bucket_id_bytes: int = 8
    #: Coordinator directory-lookup CPU time per query.
    lookup_time: float = 0.2e-3
    #: Coordinator planning CPU time per touched bucket.
    plan_time_per_bucket: float = 2e-6
    #: Outstanding queries in closed mode (1 = the paper's workload).
    pipeline_depth: int = 1
    #: Replication scheme for dynamic failover ("chained"/"mirrored";
    #: None disables failover — timed-out requests abort after retries).
    replication: "str | None" = None
    #: Per-request timeout *slack* in seconds, added on top of the healthy
    #: service-time estimate for the request's size (so large requests get
    #: proportionally later deadlines).  None = disabled on fault-free runs,
    #: auto (DEFAULT_REQUEST_TIMEOUT) when faults are injected; set
    #: explicitly to force timeouts on.
    request_timeout: "float | None" = None
    #: Retransmissions to the same node before suspecting it.
    max_retries: int = 1
    #: Base backoff before a retry (doubles per attempt).
    retry_backoff: float = 0.02
    #: Full-jitter fraction on retry backoff: each retry delay is drawn
    #: uniformly from ``((1 - retry_jitter) * full, full]`` where ``full``
    #: is the exponential backoff ``retry_backoff * 2**attempt``.  0.0
    #: (default) keeps the deterministic legacy delays (and the golden
    #: neutrality pins byte-identical); 1.0 is classic AWS-style full
    #: jitter.  Draws come from a dedicated deterministically-seeded RNG,
    #: so jittered runs are still reproducible.
    retry_jitter: float = 0.0
    #: Delay until a recovered node's heartbeat clears coordinator suspicion.
    heartbeat_delay: float = 0.05
    #: Disk queue discipline: "fifo" (default, the legacy behaviour),
    #: "sjf" (shortest job first on planned block count) or "fair"
    #: (round-robin across queries).  See `repro.parallel.engine.scheduling`.
    scheduler: str = "fifo"
    #: Replica-selection policy for reads: "primary-only" (default; replicas
    #: serve failover traffic only), "least-loaded-alive" or
    #: "fastest-estimated" (both balance healthy reads across replica copies
    #: and require ``replication``).  See `repro.parallel.engine.replicas`.
    replica_policy: str = "primary-only"
    #: Open-system admission: maximum queries in flight (None = unbounded,
    #: the legacy behaviour; arrivals beyond the limit queue for admission).
    max_inflight: "int | None" = None
    #: Open-system admission: per-request deadline in seconds.  A query that
    #: waited longer than this in the admission queue is *shed* instead of
    #: run (requires/implies a ``max_inflight`` bound).
    deadline: "float | None" = None
    #: Popularity-driven autoscaling: None (default — no heat tracking, no
    #: replicas, byte-identical to the pre-autoscale engine), a policy name
    #: ("null", "static", "heat-replicate") or a full
    #: :class:`repro.parallel.autoscale.AutoscaleParams`.  The replicating
    #: policies own read routing and replica placement themselves, so they
    #: are mutually exclusive with ``replication``/``replica_policy``.  See
    #: `repro.parallel.autoscale` and ``docs/autoscale.md``.
    autoscale: "object | None" = None
    #: Pending-event queue of the DES kernel: None (default, consults the
    #: ``REPRO_DES_QUEUE`` env var, falling back to "heap") or an explicit
    #: "heap" / "calendar".  The calendar queue drops the heap's O(log n)
    #: per-event cost on million-request open-system runs; event ordering
    #: is pinned identical either way, so results do not change.
    des_queue: "str | None" = None


def validate_params(params: ClusterParams) -> None:
    """Raise ``ValueError`` for out-of-range or inconsistent knobs.

    Policy *names* (scheduler, replica policy) are validated by their
    registries at pipeline construction; this checks the numeric knobs and
    the cross-field constraints.
    """
    if params.max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {params.max_retries}")
    if not 0.0 <= params.retry_jitter <= 1.0:
        raise ValueError(
            f"retry_jitter must be in [0, 1], got {params.retry_jitter}"
        )
    if params.request_timeout is not None and params.request_timeout <= 0:
        raise ValueError(
            f"request_timeout must be positive, got {params.request_timeout}"
        )
    if params.max_inflight is not None and params.max_inflight < 1:
        raise ValueError(f"max_inflight must be >= 1, got {params.max_inflight}")
    if params.deadline is not None and params.deadline <= 0:
        raise ValueError(f"deadline must be positive, got {params.deadline}")
    if params.des_queue is not None:
        from repro.parallel.eventq import EVENT_QUEUES

        if params.des_queue not in EVENT_QUEUES:
            raise ValueError(
                f"unknown des_queue {params.des_queue!r}; "
                f"choose from {sorted(EVENT_QUEUES)}"
            )
    if params.autoscale is not None:
        from repro.parallel.autoscale.policy import make_autoscale_policy

        # Resolves the policy name (ValueError lists the registry) and, via
        # AutoscaleParams.__post_init__, validates the numeric knobs.
        policy = make_autoscale_policy(params.autoscale)
        if policy.routes:
            if params.replication is not None:
                raise ValueError(
                    f"autoscale policy {policy.name!r} manages replicas itself "
                    "and is mutually exclusive with ClusterParams.replication"
                )
            if params.replica_policy != "primary-only":
                raise ValueError(
                    f"autoscale policy {policy.name!r} owns read routing; "
                    "replica_policy must stay 'primary-only'"
                )
    # Unknown policy names fall through to the registry's own error
    # (make_replica_policy lists the valid choices).
    from repro.parallel.engine.replicas import REPLICA_POLICIES

    if (
        params.replica_policy in REPLICA_POLICIES
        and params.replica_policy != "primary-only"
        and params.replication is None
    ):
        raise ValueError(
            f"replica policy {params.replica_policy!r} reads from replica copies "
            "and requires ClusterParams.replication to be set"
        )
