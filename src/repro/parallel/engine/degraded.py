"""Degraded-mode stage: timeout → retry → suspect → failover → abort.

:class:`DegradedMode` owns the coordinator's failure-detection state for
one run — which nodes are suspected down, which queries were aborted, and
the per-query request states whose timeouts may still fire.  The policy is
the legacy engine's, unchanged: a timed-out request retries the same node
with exponential backoff up to ``max_retries``, then the node is suspected
and the request fails over per the replica-selection policy (or the query
aborts when there is no replication to fail over to).  Recovery is
heartbeat-based: ``heartbeat_delay`` after the injector revives a node the
coordinator clears its suspicion.

Timeout deadlines scale with request size (:meth:`DegradedMode._service_estimate`),
so ``ClusterParams.request_timeout`` is *slack over the healthy estimate*,
not an absolute budget — large requests are not spuriously suspected.
"""

from __future__ import annotations

from repro._util import as_rng
from repro.parallel.message import BlockRequest

__all__ = ["DegradedMode"]

#: Seed of the dedicated retry-jitter RNG (deterministic reproducibility).
JITTER_SEED = 1996


class DegradedMode:
    """Failure detection and recovery for one :class:`RequestPipeline` run."""

    def __init__(self, pipeline):
        self.pipe = pipeline
        #: Per-request timeout slack; None disables timeouts entirely.
        self.timeout = pipeline.params.request_timeout
        #: Nodes the coordinator currently believes down (timeout-detected).
        self.suspected: set[int] = set()
        #: Queries given up on (data unreachable without replication).
        self.aborted: set[int] = set()
        self._states_by_qid: dict = {}
        #: Full-jitter fraction on retry backoff (0.0 = legacy determinism;
        #: the RNG only exists when jitter is on, so jitter-free runs make
        #: no extra random draws).
        self._jitter = pipeline.params.retry_jitter
        self._jitter_rng = as_rng(JITTER_SEED) if self._jitter > 0.0 else None

    # -- timeout arming ------------------------------------------------------

    def arm(self, state, arrive: float) -> None:
        """Arm the timeout for an in-flight request (no-op when disabled)."""
        if self.timeout is None:
            return
        pipe = self.pipe
        self._states_by_qid.setdefault(state.qid, []).append(state)
        state.timeout_ev = pipe.sim.schedule_at(
            arrive + self.timeout + self._service_estimate(state.req),
            self.request_timeout,
            state,
        )

    def _service_estimate(self, req: BlockRequest) -> float:
        """Healthy-case service time for a request (deadline scaling).

        A cold read of every block plus the CPU filter pass and the reply
        transfer: large requests get proportionally later deadlines, so the
        timeout slack (``request_timeout``) measures *anomaly*, not size.
        """
        params = self.pipe.params
        reply_bytes = params.header_bytes + params.record_bytes * req.qualified
        return (
            params.disk.service_time(req.n_blocks)
            + params.cpu_filter_per_record * req.candidates
            + self.pipe.net.transfer_time(reply_bytes)
            + self.pipe.net.latency
        )

    # -- suspicion / recovery ------------------------------------------------

    def node_recovered(self, node_id: int) -> None:
        """Called by the injector on recovery: heartbeat clears suspicion."""
        self.pipe.sim.schedule(
            self.pipe.params.heartbeat_delay, self.suspected.discard, node_id
        )

    def suspected_disks(self) -> set:
        """Global disk ids owned by currently suspected nodes."""
        disks = set()
        for n in self.suspected:
            disks.update(self.pipe.coordinator.disks_of_node(n))
        return disks

    # -- timeout / failover / abort ------------------------------------------

    def request_timeout(self, state) -> None:
        if state.done:
            return
        pipe = self.pipe
        pipe.stats.n_timeouts += 1
        state.done = True
        req = state.req
        timeout_id = None
        if pipe.trace:
            timeout_id = pipe.tracer.event(
                "request.timeout",
                pipe.sim.now,
                entity="coord",
                cause=state.trace_id,
                qid=state.qid,
                node=req.node_id,
                attempt=req.attempt,
            )
        if req.node_id not in self.suspected and req.attempt < pipe.params.max_retries:
            # Retry the same node with exponential backoff.
            pipe.stats.n_retries += 1
            delay = pipe.params.retry_backoff * (2.0**req.attempt)
            if self._jitter_rng is not None:
                # Full jitter: uniform over ((1 - jitter) * full, full].
                delay *= 1.0 - self._jitter * float(self._jitter_rng.random())
            if pipe.trace:
                pipe.tracer.event(
                    "request.retry",
                    pipe.sim.now,
                    entity="coord",
                    cause=timeout_id,
                    qid=state.qid,
                    node=req.node_id,
                    attempt=req.attempt + 1,
                    delay=delay,
                )
            pipe.resend(state.qid, req.retry(), pipe.sim.now + delay)
            return
        # Retries exhausted (or the node is already suspected): declare the
        # node down and fail the request over per the replica policy.
        if pipe.trace and req.node_id not in self.suspected:
            pipe.tracer.event(
                "node.suspect",
                pipe.sim.now,
                entity="coord",
                cause=timeout_id,
                node=req.node_id,
            )
        self.suspected.add(req.node_id)
        self.failover(state)

    def failover(self, state) -> None:
        pipe = self.pipe
        qid = state.qid
        if qid in self.aborted:
            return
        new_reqs = pipe.route_failover(pipe.plans[qid], state.req)
        if new_reqs is None:
            self.abort(qid)
            return
        pipe.stats.n_failovers += 1
        if pipe.trace:
            pipe.tracer.event(
                "request.failover",
                pipe.sim.now,
                entity="coord",
                cause=state.trace_id,
                qid=qid,
                node=state.req.node_id,
                n_requests=len(new_reqs),
            )
        # Re-planning the replica route costs coordinator CPU.
        _, replan_end = pipe.coord_cpu.reserve(
            pipe.sim.now,
            pipe.coordinator.plan_time_per_bucket * state.req.n_blocks,
        )
        pipe.remaining[qid] += len(new_reqs) - 1
        for nr in new_reqs:
            pipe.resend(qid, nr, replan_end)

    def abort(self, qid: int) -> None:
        """Give up on a query whose data is unreachable."""
        if qid in self.aborted:
            return
        pipe = self.pipe
        self.aborted.add(qid)
        if pipe.trace:
            pipe.tracer.event(
                "query.abort",
                pipe.sim.now,
                entity=f"query{qid}",
                cause=pipe._qspan.get(qid),
                qid=qid,
            )
        for st in self._states_by_qid.get(qid, []):
            st.done = True
            if st.timeout_ev is not None:
                st.timeout_ev.cancel()
        pipe.remaining.pop(qid, None)
        pipe._complete(qid)
