"""Pluggable per-disk queue disciplines for the request pipeline.

Every physical disk of the simulated cluster owns one :class:`DiskQueue`.
The worker stage submits one *job* per disk touched by a block request (the
disk reads its blocks as one sequential transfer, exactly as before); the
queue decides the order jobs are serviced in:

``fifo``
    First-come-first-served — the legacy behaviour.  Implemented as an
    immediate analytic reservation against the disk's
    :class:`~repro.parallel.des.Resource` (no extra simulator events), so
    the default configuration is *byte-for-byte identical* to the
    pre-refactor engine.
``sjf``
    Shortest job first on the planned block count: while the disk is busy,
    waiting jobs re-order so small reads overtake large ones (ties broken
    by arrival order).  Reduces mean latency under mixed query sizes at the
    cost of large-read tail latency.
``fair``
    Round-robin across queries: each query gets its own FIFO lane and the
    disk cycles over lanes, one job at a time — one block-hungry query can
    no longer convoy everyone else behind it.

The non-FIFO disciplines are event-driven (service completion is decided
only when the disk frees up), so their jobs complete via simulator events;
``submit`` therefore reports completion through a callback in all cases.

Use :func:`make_scheduler` to resolve a discipline name (raises
``ValueError`` with the available names for unknown ones).
"""

from __future__ import annotations

from collections import deque

__all__ = ["DiskQueue", "FifoDiskQueue", "SjfDiskQueue", "FairDiskQueue",
           "SCHEDULERS", "make_scheduler"]


class DiskJob:
    """One disk read: ``n_blocks`` blocks taking ``service`` seconds."""

    __slots__ = ("qid", "n_blocks", "service", "done", "seq")

    def __init__(self, qid: int, n_blocks: int, service: float, done, seq: int):
        self.qid = qid
        self.n_blocks = n_blocks
        self.service = service
        self.done = done
        self.seq = seq


class DiskQueue:
    """Base class: one scheduling queue in front of one disk resource.

    Parameters
    ----------
    sim:
        The run's :class:`~repro.parallel.des.Simulator` (event-driven
        disciplines schedule their completions on it).
    resource:
        The disk's :class:`~repro.parallel.des.Resource`; busy-time
        accounting flows through it so utilization reporting is uniform
        across disciplines.
    """

    name = "base"

    def __init__(self, sim, resource):
        self.sim = sim
        self.resource = resource
        self._seq = 0
        #: Total service seconds sitting in the queue (not yet started);
        #: consulted by the ``fastest-estimated`` replica policy.
        self.pending_service = 0.0

    def submit(self, now: float, service: float, qid: int, n_blocks: int, done) -> None:
        """Enqueue one job arriving at ``now``; ``done(start, end)`` fires
        when the disk has finished it."""
        raise NotImplementedError

    def estimated_free(self, now: float) -> float:
        """Earliest time a job submitted at ``now`` could start service."""
        return max(now, self.resource.busy_until) + self.pending_service


class FifoDiskQueue(DiskQueue):
    """First-come-first-served: the analytic legacy reservation path."""

    name = "fifo"

    def submit(self, now, service, qid, n_blocks, done):
        start, end = self.resource.reserve(now, service)
        done(start, end)


class _EventDrivenQueue(DiskQueue):
    """Shared machinery for disciplines that wait for the disk to free up."""

    def __init__(self, sim, resource):
        super().__init__(sim, resource)
        self._busy = False

    # -- discipline hooks ----------------------------------------------------

    def _enqueue(self, job: DiskJob) -> None:
        raise NotImplementedError

    def _pick(self) -> "DiskJob | None":
        raise NotImplementedError

    # -- engine --------------------------------------------------------------

    def submit(self, now, service, qid, n_blocks, done):
        job = DiskJob(qid, n_blocks, service, done, self._seq)
        self._seq += 1
        self._enqueue(job)
        self.pending_service += service
        if not self._busy:
            self._start_next(now)

    def _start_next(self, now: float) -> None:
        job = self._pick()
        if job is None:
            return
        self._busy = True
        self.pending_service -= job.service
        start = max(now, self.resource.busy_until)
        end = start + job.service
        self.resource.busy_until = end
        self.resource.busy_time += job.service
        self.sim.schedule_at(end, self._finish, job, start, end)

    def _finish(self, job: DiskJob, start: float, end: float) -> None:
        self._busy = False
        job.done(start, end)
        if not self._busy:  # the callback may have submitted and started work
            self._start_next(self.sim.now)


class SjfDiskQueue(_EventDrivenQueue):
    """Shortest job first on planned block count (FIFO among equals)."""

    name = "sjf"

    def __init__(self, sim, resource):
        super().__init__(sim, resource)
        self._jobs: list[DiskJob] = []

    def _enqueue(self, job):
        self._jobs.append(job)

    def _pick(self):
        if not self._jobs:
            return None
        best = min(self._jobs, key=lambda j: (j.n_blocks, j.seq))
        self._jobs.remove(best)
        return best


class FairDiskQueue(_EventDrivenQueue):
    """Round-robin across queries: per-query FIFO lanes, served cyclically."""

    name = "fair"

    def __init__(self, sim, resource):
        super().__init__(sim, resource)
        self._lanes: dict[int, deque] = {}
        self._cycle: deque = deque()  # qids in round-robin order

    def _enqueue(self, job):
        lane = self._lanes.get(job.qid)
        if lane is None:
            lane = self._lanes[job.qid] = deque()
            self._cycle.append(job.qid)
        lane.append(job)

    def _pick(self):
        if not self._cycle:
            return None
        qid = self._cycle.popleft()
        lane = self._lanes[qid]
        job = lane.popleft()
        if lane:
            self._cycle.append(qid)  # stays in the rotation
        else:
            del self._lanes[qid]
        return job


#: Registered disk queue disciplines, by name.
SCHEDULERS = {
    FifoDiskQueue.name: FifoDiskQueue,
    SjfDiskQueue.name: SjfDiskQueue,
    FairDiskQueue.name: FairDiskQueue,
}


def make_scheduler(name: str):
    """The :class:`DiskQueue` subclass registered under ``name``.

    Raises ``ValueError`` listing the known disciplines otherwise.
    """
    try:
        return SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
