"""Worker-side pipeline stages: cache probe → disk service → filter → reply.

:class:`WorkerStage` executes a delivered block request on its target
node.  The stages mirror the §3.5 worker loop: probe the LRU cache in
arrival order, fan the missing blocks out to the owning disks' *queues*
(the pluggable discipline — :mod:`repro.parallel.engine.scheduling`), and
once the last disk read lands, run the CPU filter pass and stream the
reply back through the node NIC toward the coordinator's ingest link.

Under the default FIFO discipline every disk job completes synchronously
(an analytic reservation), so the whole stage runs inline at the arrival
instant — exactly the legacy code path, byte for byte.
"""

from __future__ import annotations

__all__ = ["WorkerStage"]


class _Fanout:
    """Join-counter for one request's parallel per-disk reads."""

    __slots__ = ("left", "done")

    def __init__(self, left: int, done: float):
        self.left = left
        self.done = done  # completion time of the latest finished read


class WorkerStage:
    """Serves delivered block requests on behalf of a pipeline run."""

    def __init__(self, pipeline):
        self.pipe = pipeline

    def receive(self, state) -> None:
        """A block request arrives at its target node (post network)."""
        pipe = self.pipe
        req = state.req
        node = pipe.nodes[req.node_id]
        entity = f"node{req.node_id}"
        if pipe.injector is not None:
            if not node.alive:
                # Dropped on the floor; the timeout recovers it.
                if pipe.trace:
                    pipe.tracer.event(
                        "request.drop",
                        pipe.sim.now,
                        entity=entity,
                        cause=state.trace_id,
                        reason="node_down",
                    )
                return
            if not pipe.injector.message_delivered(req.node_id):
                pipe.stats.n_messages_lost += 1
                if pipe.trace:
                    pipe.tracer.event(
                        "message.drop",
                        pipe.sim.now,
                        entity=entity,
                        cause=state.trace_id,
                        direction="request",
                    )
                return
        arrive_id = None
        if pipe.trace:
            arrive_id = pipe.tracer.event(
                "request.arrive",
                pipe.sim.now,
                entity=entity,
                cause=state.trace_id,
                qid=state.qid,
                n_blocks=req.n_blocks,
            )
        misses_per_disk, n_misses = node.probe_cache(req, pipe._disk_lookup(req))
        arrival = pipe.sim.now
        if not misses_per_disk:
            self._filter_and_reply(state, node, entity, arrival, n_misses, arrive_id)
            return
        # Disks work in parallel; each disk serves its blocks as one job
        # ordered by that disk's queue discipline.  The reply is assembled
        # when the last read lands.
        fanout = _Fanout(len(misses_per_disk), arrival)
        for d, n_blocks in misses_per_disk.items():
            service, slow = node.disk_service(d, n_blocks)
            pipe.disk_queues[req.node_id][d].submit(
                arrival,
                service,
                state.qid,
                n_blocks,
                self._on_disk_done(
                    state, node, entity, fanout, d, n_blocks,
                    service, slow, n_misses, arrive_id,
                ),
            )

    def _on_disk_done(
        self, state, node, entity, fanout, d, n_blocks, service, slow, n_misses, cause
    ):
        pipe = self.pipe

        def done(start: float, end: float) -> None:
            pipe.metrics.histogram("disk.service_time").observe(service)
            if pipe.trace:
                pipe.tracer.event(
                    "disk.read",
                    pipe.sim.now,
                    entity=f"{entity}.disk{d}",
                    cause=cause,
                    n_blocks=n_blocks,
                    start=start,
                    end=end,
                    slowdown=slow,
                )
            fanout.done = max(fanout.done, end)
            fanout.left -= 1
            if fanout.left == 0:
                self._filter_and_reply(state, node, entity, fanout.done, n_misses, cause)

        return done

    def _filter_and_reply(
        self, state, node, entity, disk_done, n_misses, cause
    ) -> None:
        """CPU filter pass, then stream the reply through the node NIC."""
        pipe = self.pipe
        req = state.req
        ready, reply = node.finish_request(
            disk_done, req, req.candidates, req.qualified, n_misses
        )
        reply_bytes = (
            pipe.params.header_bytes + pipe.params.record_bytes * reply.n_qualified
        )
        t = pipe.net.transfer_time(reply_bytes)
        _, send_end = node.nic.reserve(ready, t)
        pipe.stats.comm_time += t + pipe.net.latency
        reply_id = None
        if pipe.trace:
            reply_id = pipe.tracer.event(
                "reply.send",
                pipe.sim.now,
                entity=entity,
                cause=cause,
                qid=state.qid,
                ready=ready,
                send_end=send_end,
                n_qualified=reply.n_qualified,
                n_cache_misses=reply.n_cache_misses,
                reply_bytes=reply_bytes,
            )
        pipe.sim.schedule_at(
            send_end + pipe.net.latency,
            pipe._coordinator_receive,
            state,
            reply_bytes,
            reply_id,
        )
