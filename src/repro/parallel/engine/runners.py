"""Run drivers: closed/open workloads and the initial-load simulation.

:class:`ParallelGridFile` is the user-facing entry point; its run methods
are thin compositions over :class:`~repro.parallel.engine.pipeline.
RequestPipeline` — the closed driver keeps ``pipeline_depth`` queries
outstanding, the open driver hands Poisson arrivals to the admission
controller.  :func:`ParallelGridFile.simulate_load` models the initial
declustered load of §3.5 analytically (no pipeline involved).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.obs import PROFILER
from repro.parallel.coordinator import Coordinator
from repro.parallel.des import Resource
from repro.parallel.engine.admission import make_admission
from repro.parallel.engine.params import ClusterParams, validate_params
from repro.parallel.engine.pipeline import RequestPipeline
from repro.parallel.engine.replicas import make_replica_policy
from repro.parallel.engine.scheduling import make_scheduler
from repro.parallel.engine.stats import PerfReport
from repro.parallel.replication import replica_assignment

__all__ = ["ParallelGridFile", "LoadReport"]


class ParallelGridFile:
    """A declustered page store deployed on the simulated cluster.

    Despite the historical name, any storage structure works: pass a
    :class:`~repro.gridfile.GridFile`, an :class:`~repro.rtree.RTree`, or
    any :class:`~repro.parallel.stores.PageStore` — the coordinator plans
    against the store interface (page = disk block).

    Parameters
    ----------
    store:
        The declustered storage structure.
    assignment:
        ``(n_pages,)`` disk ids (from any
        :class:`repro.core.DeclusteringMethod` or leaf-assignment helper).
    n_disks:
        Total disks; must be a multiple of ``params.disks_per_node``.
    params:
        Cost-model and pipeline-policy parameters
        (:class:`~repro.parallel.engine.params.ClusterParams`).
    """

    def __init__(
        self,
        store,
        assignment: np.ndarray,
        n_disks: int,
        params: "ClusterParams | None" = None,
    ):
        self.params = params or ClusterParams()
        if self.params.replication is not None:
            # Validate eagerly (scheme name, mirrored needs even M).
            replica_assignment(
                np.asarray(assignment, dtype=np.int64), int(n_disks), self.params.replication
            )
        validate_params(self.params)
        # Resolve the policy names eagerly so bad configurations fail at
        # construction, not mid-run.
        make_scheduler(self.params.scheduler)
        make_replica_policy(self.params.replica_policy)
        self.coordinator = Coordinator(
            store,
            assignment,
            n_disks,
            disks_per_node=self.params.disks_per_node,
            lookup_time=self.params.lookup_time,
            plan_time_per_bucket=self.params.plan_time_per_bucket,
        )
        self.store = self.coordinator.store
        self.n_disks = int(n_disks)
        self.n_nodes = self.coordinator.n_nodes

    def run_queries(self, queries, faults=None, tracer=None) -> PerfReport:
        """Closed-system run: at most ``pipeline_depth`` outstanding queries.

        Parameters
        ----------
        queries:
            The workload.
        faults:
            Optional :class:`repro.parallel.faults.FaultPlan` (or a bound
            :class:`~repro.parallel.faults.FaultInjector`) injecting crashes,
            slowdowns and message loss mid-run; see
            :mod:`repro.parallel.cluster` for the degraded-mode protocol.
        tracer:
            Optional :class:`repro.obs.Tracer` recording the run; with the
            default ``None`` the process-wide tracer applies (enabled only
            when ``REPRO_TRACE`` is set — see ``docs/observability.md``).
        """
        engine = RequestPipeline(self, queries, faults=faults, tracer=tracer)
        n = len(engine.queries)
        state = {"next": 0}

        def submit_next(_qid=None):
            if state["next"] < n:
                qid = state["next"]
                state["next"] += 1
                engine.submit(qid)

        engine.on_complete = submit_next
        for _ in range(max(1, self.params.pipeline_depth)):
            submit_next()
        with PROFILER.phase("cluster.run"):
            engine.sim.run()
        return engine.report()

    def run_open(
        self, queries, arrival_rate: float, rng=None, faults=None, tracer=None
    ) -> PerfReport:
        """Open-system run: Poisson arrivals at ``arrival_rate`` queries/s.

        Queries enter the system at their arrival instants; with the default
        unbounded admission, queueing happens implicitly at the coordinator
        CPU/NIC and the worker disks, and latency percentiles reveal the
        saturation point (``benchmarks/bench_ext_open_system.py``).  Setting
        ``ClusterParams.max_inflight`` and/or ``deadline`` switches to
        bounded admission with optional deadline shedding — see
        :mod:`repro.parallel.engine.admission`.

        Parameters
        ----------
        queries:
            The workload.
        arrival_rate:
            Mean arrivals per simulated second (> 0).
        rng:
            Seed/generator for the exponential inter-arrival times.
        faults:
            Optional :class:`repro.parallel.faults.FaultPlan` injected
            mid-run (see :meth:`run_queries`).
        tracer:
            Optional :class:`repro.obs.Tracer` (see :meth:`run_queries`).
        """
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
        rng = as_rng(rng)
        engine = RequestPipeline(self, queries, faults=faults, tracer=tracer)
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=len(engine.queries)))
        engine.admission = make_admission(engine, self.params)
        engine.admission.start(arrivals)
        with PROFILER.phase("cluster.run"):
            engine.sim.run()
        return engine.report()

    def simulate_load(
        self, cpu_build_per_record: float = 5e-6, parallel_input: bool = False
    ) -> "LoadReport":
        """Simulate the initial declustered load (paper §3.5's 3M-record step).

        The coordinator builds the structure (CPU per record), then ships
        every non-empty page to its owning node.  With the default
        ``parallel_input=False`` all pages flow through the coordinator's
        NIC before being written by the receiving node's disk; node disks
        work in parallel, so load time scales with nodes until the
        serialized coordinator NIC saturates (around ``disk_write /
        transfer_time`` ≈ 50 nodes with the default constants).
        ``parallel_input=True`` models pre-partitioned input (each node
        ingests its own share directly), which removes that ceiling.
        """
        if cpu_build_per_record < 0:
            raise ValueError("cpu_build_per_record must be non-negative")
        return _simulate_load(self, cpu_build_per_record, parallel_input)


@dataclass
class LoadReport:
    """Results of simulating the initial declustered load (paper §3.5)."""

    n_pages: int
    n_nodes: int
    #: Simulated seconds to build + distribute the file.
    elapsed_time: float
    #: Coordinator CPU seconds spent building the structure.
    build_time: float
    #: Bytes shipped to each node.
    bytes_per_node: np.ndarray

    @property
    def imbalance(self) -> float:
        """max/mean bytes per node (1.0 = perfectly even load)."""
        mean = self.bytes_per_node.mean()
        return float(self.bytes_per_node.max() / mean) if mean > 0 else 1.0


def _simulate_load(pgf: "ParallelGridFile", cpu_build_per_record: float, parallel_input: bool) -> LoadReport:
    params = pgf.params
    net = params.network
    store = pgf.store
    n_records = sum(
        store.page_records(p).size for p in range(store.n_pages)
    )
    build = cpu_build_per_record * n_records

    page_bytes = params.disk.block_bytes
    node_of = pgf.coordinator.node_of_bucket
    bytes_per_node = np.zeros(pgf.n_nodes)
    disk_write = [Resource(f"load.node{i}.disk") for i in range(pgf.n_nodes)]
    coord_nic = Resource("load.coord.nic")
    finish = build
    for page in range(store.n_pages):
        if store.page_records(page).size == 0:
            continue  # empty pages occupy no disk block
        node = node_of(page)
        bytes_per_node[node] += page_bytes
        t = net.transfer_time(page_bytes)
        if parallel_input:
            # Each node ingests its own partition of the input directly:
            # transfers overlap across nodes, serialized per node NIC=disk.
            _, arrive = disk_write[node].reserve(build, t + net.latency)
        else:
            # All data flows through the coordinator's NIC first.
            _, sent = coord_nic.reserve(build, t)
            _, arrive = disk_write[node].reserve(
                sent + net.latency, params.disk.service_time(1)
            )
        finish = max(finish, arrive)
    return LoadReport(
        n_pages=store.n_pages,
        n_nodes=pgf.n_nodes,
        elapsed_time=finish,
        build_time=build,
        bytes_per_node=bytes_per_node,
    )
