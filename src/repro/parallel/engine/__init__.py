"""The composable cluster engine: an explicit request pipeline.

This package is the carved-up successor of the monolithic
``repro.parallel.cluster`` engine.  One query flows through explicit
stages — admission → plan/route → cache probe → replica selection → disk
service → filter/aggregate → reply — each owned by a small object, with
three pluggable seams:

* **disk scheduling** (:mod:`~repro.parallel.engine.scheduling`):
  ``fifo`` / ``sjf`` / ``fair`` per-disk queue disciplines;
* **replica selection** (:mod:`~repro.parallel.engine.replicas`):
  ``primary-only`` / ``least-loaded-alive`` / ``fastest-estimated``;
* **admission control** (:mod:`~repro.parallel.engine.admission`):
  unbounded (legacy), ``max_inflight`` bounding and ``deadline`` shedding
  for open-system runs.

Degraded mode (timeout → retry → suspect → failover → abort) is its own
stage (:mod:`~repro.parallel.engine.degraded`); shared per-run bookkeeping
lives in :mod:`~repro.parallel.engine.stats`.

The default configuration reproduces the legacy engine byte for byte
(``tests/test_engine_neutrality.py``).  The public entry points re-export
through :mod:`repro.parallel.cluster` and :mod:`repro.parallel` unchanged.
"""

from repro.parallel.engine.admission import (
    AdmissionController,
    BoundedAdmission,
    UnboundedAdmission,
    make_admission,
)
from repro.parallel.engine.degraded import DegradedMode
from repro.parallel.engine.params import (
    DEFAULT_REQUEST_TIMEOUT,
    ClusterParams,
    validate_params,
)
from repro.parallel.engine.pipeline import RequestPipeline
from repro.parallel.engine.replicas import (
    REPLICA_POLICIES,
    ReplicaSelector,
    make_replica_policy,
)
from repro.parallel.engine.runners import LoadReport, ParallelGridFile
from repro.parallel.engine.scheduling import SCHEDULERS, DiskQueue, make_scheduler
from repro.parallel.engine.stats import PerfReport, StatsCollector

__all__ = [
    "AdmissionController",
    "BoundedAdmission",
    "ClusterParams",
    "DEFAULT_REQUEST_TIMEOUT",
    "DegradedMode",
    "DiskQueue",
    "LoadReport",
    "ParallelGridFile",
    "PerfReport",
    "REPLICA_POLICIES",
    "ReplicaSelector",
    "RequestPipeline",
    "SCHEDULERS",
    "StatsCollector",
    "UnboundedAdmission",
    "make_admission",
    "make_replica_policy",
    "make_scheduler",
    "validate_params",
]
