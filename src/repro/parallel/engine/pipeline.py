"""The coordinator-side request pipeline: one simulation run.

:class:`RequestPipeline` is the explicit composition of the engine's
stages.  A query flows:

1. **admission** (open runs only — :mod:`repro.parallel.engine.admission`)
   decides when the query enters;
2. **plan/route**: the coordinator plans the query (CPU reservation) and
   the replica-selection policy (:mod:`repro.parallel.engine.replicas`)
   maps each planned bucket to the disk that will serve it;
3. **request send**: one message per involved node over the coordinator
   NIC, with an optional timeout armed per request;
4. the **worker stage** (:mod:`repro.parallel.engine.worker`) probes the
   cache, fans out to the per-disk queues
   (:mod:`repro.parallel.engine.scheduling`), filters, and replies;
5. **ingest/reply**: replies serialize through the coordinator's ingest
   link; the query completes when the last one lands.

Degraded mode (timeout → retry → suspect → failover → abort) and the
:class:`~repro.parallel.faults.FaultInjector` contract (``sim``, ``nodes``,
``net``, ``node_recovered``, ``trace``/``tracer`` attributes) are unchanged
from the legacy engine.  Statistics accumulate in a shared
:class:`~repro.parallel.engine.stats.StatsCollector`; both the static and
the online drivers are thin compositions over this class.

With the default seams (FIFO scheduling, primary-only replica selection,
unbounded admission) every reservation and event is issued in the exact
legacy order — runs are byte-for-byte identical to the pre-refactor
engine (``tests/test_engine_neutrality.py``).
"""

from __future__ import annotations

from repro.obs import PROFILER, MetricsRegistry, default_tracer
from repro.parallel.des import Resource, Simulator
from repro.parallel.engine.degraded import DegradedMode
from repro.parallel.engine.params import DEFAULT_REQUEST_TIMEOUT
from repro.parallel.engine.replicas import make_replica_policy
from repro.parallel.engine.scheduling import make_scheduler
from repro.parallel.engine.stats import QUEUE_BOUNDS, StatsCollector
from repro.parallel.engine.worker import WorkerStage
from repro.parallel.message import BlockRequest
from repro.parallel.node import WorkerNode

__all__ = ["RequestPipeline"]


class _RequestState:
    """Coordinator-side bookkeeping for one in-flight block request."""

    __slots__ = ("qid", "req", "timeout_ev", "done", "trace_id")

    def __init__(self, qid: int, req: BlockRequest):
        self.qid = qid
        self.req = req
        self.timeout_ev = None
        self.done = False
        self.trace_id = None


class RequestPipeline:
    """Resources, protocol stages and statistics of one simulation run."""

    def __init__(self, owner, queries, faults=None, tracer=None, lazy_plan=False):
        self.owner = owner
        self.params = owner.params
        self.coordinator = owner.coordinator
        self.n_nodes = owner.n_nodes
        self.n_disks = owner.n_disks
        self.net = owner.params.network
        self.tracer = tracer if tracer is not None else default_tracer()
        self.trace = self.tracer.enabled
        self.metrics = MetricsRegistry()
        self.sim = Simulator(
            tracer=self.tracer if self.trace else None,
            queue=self.params.des_queue,
        )
        self.queries = list(queries)
        #: Lazy runs (the online engine) plan each query at submit time
        #: against the live store instead of eagerly up front.
        self.lazy_plan = lazy_plan
        if lazy_plan:
            self.plans = [None] * len(self.queries)
        else:
            with PROFILER.phase("cluster.plan"):
                self.plans = [
                    self.coordinator.plan(i, q) for i, q in enumerate(self.queries)
                ]
        self.nodes = [
            WorkerNode.create(
                i,
                self.params.disk,
                self.params.cache_blocks,
                disks_per_node=self.params.disks_per_node,
                cpu_filter_per_record=self.params.cpu_filter_per_record,
            )
            for i in range(owner.n_nodes)
        ]
        self.coord_cpu = Resource("coord.cpu")
        self.coord_nic = Resource("coord.nic")
        self.coord_ingest = Resource("coord.ingest")
        self.stats = StatsCollector(len(self.queries))
        self.remaining: dict[int, int] = {}
        self.on_complete = None  # optional hook(qid)

        # -- pluggable seams ------------------------------------------------
        queue_cls = make_scheduler(self.params.scheduler)
        self.disk_queues = [
            [queue_cls(self.sim, d) for d in node.disks] for node in self.nodes
        ]
        self.worker = WorkerStage(self)
        self.selector = make_replica_policy(self.params.replica_policy)
        self.selector.bind(self)
        self.admission = None  # installed by the open runner
        #: Autoscale policy seam (None unless ``params.autoscale`` is set;
        #: the import is deferred to keep the package acyclic).
        self.autoscale = None
        if self.params.autoscale is not None:
            from repro.parallel.autoscale.policy import make_autoscale_policy

            self.autoscale = make_autoscale_policy(self.params.autoscale)
            self.autoscale.bind(self)

        # -- degraded mode (timeout/retry/suspect/failover/abort) ------------
        self.degraded = DegradedMode(self)
        self.injector = None
        if faults is not None:
            from repro.parallel.faults import FaultInjector, FaultPlan

            if isinstance(faults, FaultPlan):
                faults = FaultInjector(
                    faults, owner.n_nodes, disks_per_node=self.params.disks_per_node
                )
            self.injector = faults
            self.injector.install(self)
            if self.degraded.timeout is None:
                self.degraded.timeout = DEFAULT_REQUEST_TIMEOUT
        self._qspan: dict[int, int] = {}
        if self.trace:
            self.tracer.event(
                "run.start",
                self.sim.now,
                entity="run",
                n_queries=len(self.queries),
                n_nodes=owner.n_nodes,
                n_disks=owner.n_disks,
                faulted=self.injector is not None,
            )

    # -- plan / route --------------------------------------------------------

    def _plan_of(self, qid: int):
        """The plan of query ``qid``; computed on first use when lazy."""
        plan = self.plans[qid]
        if plan is None:
            plan = self.plans[qid] = self.coordinator.plan(qid, self.queries[qid])
        return plan

    def submit(self, qid: int, arrival: "float | None" = None) -> None:
        """Start query ``qid`` now; ``arrival`` backdates the latency clock
        to when the query entered the admission queue."""
        now = self.sim.now
        self.stats.record_submit(qid, now if arrival is None else arrival)
        plan = self._plan_of(qid)
        self.metrics.counter("queries.submitted").inc()
        self.metrics.histogram("queue.depth", bounds=QUEUE_BOUNDS).observe(
            len(self.remaining)
        )
        if self.trace:
            self._qspan[qid] = self.tracer.span_open(
                "query",
                now,
                entity=f"query{qid}",
                qid=qid,
                n_requests=len(plan.requests),
            )
        _, lookup_end = self.coord_cpu.reserve(
            now, self.coordinator.plan_cpu_time(plan)
        )
        if not plan.requests:
            self.sim.schedule_at(lookup_end, self._complete, qid)
            return
        if self.autoscale is not None and self.autoscale.routes:
            requests = self.autoscale.route(plan, plan.requests)
        else:
            requests = self.selector.route(plan, plan.requests)
        if requests is None:
            self.sim.schedule_at(lookup_end, self.degraded.abort, qid)
            return
        self.remaining[qid] = len(requests)
        for req in requests:
            self._send_request(_RequestState(qid, req), lookup_end)

    # -- request send --------------------------------------------------------

    def _send_request(self, state: _RequestState, earliest: float) -> None:
        """Transmit one block request, arming its timeout if enabled."""
        req = state.req
        req_bytes = (
            self.params.header_bytes + self.params.bucket_id_bytes * req.n_blocks
        )
        t = self.net.transfer_time(req_bytes)
        _, send_end = self.coord_nic.reserve(earliest, t)
        self.stats.comm_time += t + self.net.latency
        arrive = send_end + self.net.latency
        self.metrics.counter("requests.sent").inc()
        if self.trace:
            # Effective global disk per requested block (failover reads carry
            # explicit targets); lets traces reconstruct per-disk access
            # counts exactly (tests/test_obs_differential.py).
            disks = (
                req.target_disks
                if req.target_disks is not None
                else self.coordinator.assignment[req.bucket_ids]
            )
            state.trace_id = self.tracer.event(
                "request.send",
                self.sim.now,
                entity="coord",
                cause=self._qspan.get(state.qid),
                qid=state.qid,
                node=req.node_id,
                attempt=req.attempt,
                n_blocks=req.n_blocks,
                disks=disks,
                send_end=send_end,
                arrive=arrive,
            )
        self.sim.schedule_at(arrive, self.worker.receive, state)
        self.degraded.arm(state, arrive)

    def resend(self, qid: int, req: BlockRequest, earliest: float) -> None:
        """Re-transmit a request (retry or failover) in fresh state."""
        self._send_request(_RequestState(qid, req), earliest)

    def _disk_lookup(self, req: BlockRequest):
        """Bucket -> local disk mapping (replica-aware for rerouted reads)."""
        if req.target_disks is None:
            return self.coordinator.local_disk_of_bucket
        dpn = self.params.disks_per_node
        local = {
            int(b): int(d) % dpn for b, d in zip(req.bucket_ids, req.target_disks)
        }
        return local.__getitem__

    def disk_queue_of(self, disk: int):
        """The :class:`~repro.parallel.engine.scheduling.DiskQueue` in front
        of global disk id ``disk``."""
        dpn = self.params.disks_per_node
        return self.disk_queues[disk // dpn][disk % dpn]

    # -- reply ingest / completion -------------------------------------------

    def _coordinator_receive(
        self, state: _RequestState, reply_bytes: float, cause=None
    ) -> None:
        if state.done:
            # Duplicate/late reply: the request was already resolved.
            if self.trace:
                self.tracer.event(
                    "reply.stale", self.sim.now, entity="coord", cause=cause
                )
            return
        if self.injector is not None and not self.injector.message_delivered(
            state.req.node_id
        ):
            self.stats.n_messages_lost += 1
            if self.trace:
                self.tracer.event(
                    "message.drop",
                    self.sim.now,
                    entity="coord",
                    cause=cause,
                    direction="reply",
                )
            return
        state.done = True
        if state.timeout_ev is not None:
            state.timeout_ev.cancel()
        if state.qid in self.aborted:
            return
        _, ingest_end = self.coord_ingest.reserve(
            self.sim.now, self.net.transfer_time(reply_bytes)
        )
        if self.trace:
            self.tracer.event(
                "reply.ingest",
                self.sim.now,
                entity="coord",
                cause=cause,
                qid=state.qid,
                ingest_end=ingest_end,
            )
        self.sim.schedule_at(ingest_end, self._reply_done, state.qid)

    def _reply_done(self, qid: int) -> None:
        if qid not in self.remaining:
            return  # aborted while this reply was being ingested
        self.remaining[qid] -= 1
        if self.remaining[qid] == 0:
            del self.remaining[qid]
            self._complete(qid)

    def _complete(self, qid: int) -> None:
        self.stats.record_completion(qid, self.sim.now)
        self.metrics.counter("queries.completed").inc()
        self.metrics.histogram("query.latency").observe(
            self.sim.now - self.stats.submit_time[qid]
        )
        if self.trace:
            span = self._qspan.pop(qid, None)
            if span is not None:
                self.tracer.span_close(span, self.sim.now, aborted=qid in self.aborted)
        if self.autoscale is not None:
            self.autoscale.query_complete(qid)
        if self.admission is not None:
            self.admission.query_done(qid)
        if self.on_complete is not None:
            self.on_complete(qid)

    # -- degraded-mode facade ------------------------------------------------
    # Failure detection lives in :class:`DegradedMode`; these delegates are
    # the stable surface the injector, replica policies and drivers use.

    @property
    def suspected(self) -> set:
        return self.degraded.suspected

    @property
    def aborted(self) -> set:
        return self.degraded.aborted

    def node_recovered(self, node_id: int) -> None:
        """Injector contract: a revived node heartbeats suspicion away."""
        self.degraded.node_recovered(node_id)

    def suspected_disks(self) -> set:
        """Global disk ids owned by currently suspected nodes."""
        return self.degraded.suspected_disks()

    def route_failover(self, plan, req):
        """Re-route one timed-out request's buckets (autoscale-aware)."""
        if self.autoscale is not None and self.autoscale.routes:
            return self.autoscale.failover(plan, req)
        return self.selector.failover(plan, req)

    # -- reporting -----------------------------------------------------------

    def report(self):
        """Fold the run into a :class:`~repro.parallel.engine.stats.PerfReport`."""
        return self.stats.build_report(
            n_nodes=self.n_nodes,
            n_disks=self.n_disks,
            nodes=self.nodes,
            plans=self.plans,
            metrics=self.metrics,
            aborted=self.aborted,
            injector=self.injector,
            tracer=self.tracer if self.trace else None,
            now=self.sim.now,
        )
