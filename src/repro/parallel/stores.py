"""Page stores: the storage-structure interface of the cluster simulator.

The SPMD protocol only needs three things from a storage structure: which
pages a query touches, which records a page holds, and the record
coordinates.  :class:`PageStore` captures that contract;
:class:`GridFileStore` and :class:`RTreeStore` adapt the two structures, so
the *parallel R-tree* runs on the same simulated SP-2 as the parallel grid
file (``benchmarks/bench_ext_rtree_cluster.py``).

:class:`DurableGridFileStore` backs the grid file with the crash-safe
storage engine of :mod:`repro.storage`: queries still run against the live
in-memory structure (identical plans, identical simulated costs), but
every mutation can be committed to an actual block device through
:meth:`~DurableGridFileStore.commit_op` — which is what the online
engine's write path does when it is handed one.  :func:`make_store` builds
either flavour from a backend name (``memory`` keeps the legacy pure
in-memory store, so all golden neutrality pins are untouched).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.gridfile.gridfile import GridFile
from repro.rtree.rtree import RTree
from repro.storage import DEFAULT_PAGE_SIZE, DurableGridFile, StorageError

__all__ = [
    "PageStore",
    "GridFileStore",
    "DurableGridFileStore",
    "RTreeStore",
    "as_page_store",
    "make_store",
]


class PageStore(ABC):
    """Minimal storage interface the coordinator plans against."""

    @property
    @abstractmethod
    def n_pages(self) -> int:
        """Number of disk pages (the declustering domain)."""

    @abstractmethod
    def query_pages(self, lo, hi) -> np.ndarray:
        """Ids of (non-empty) pages intersecting the closed query box."""

    @abstractmethod
    def page_records(self, page_id: int) -> np.ndarray:
        """Record ids stored on a page."""

    @abstractmethod
    def record_coords(self, record_ids: np.ndarray) -> np.ndarray:
        """Coordinates of the given records, shape ``(n, d)``."""


class GridFileStore(PageStore):
    """A grid file as a page store (page = bucket)."""

    def __init__(self, gf: GridFile):
        self.gf = gf

    @property
    def n_pages(self) -> int:
        return self.gf.n_buckets

    def query_pages(self, lo, hi) -> np.ndarray:
        return self.gf.query_buckets(lo, hi)

    def page_records(self, page_id: int) -> np.ndarray:
        return self.gf.records_in_bucket(page_id)

    def record_coords(self, record_ids: np.ndarray) -> np.ndarray:
        return self.gf.points[np.asarray(record_ids, dtype=np.int64)]


class DurableGridFileStore(GridFileStore):
    """A grid file served from the crash-safe storage engine.

    Wraps a :class:`repro.storage.DurableGridFile`: reads use the live
    in-memory grid file exactly like :class:`GridFileStore` (so the
    simulator's plans and costs are unchanged), while
    :meth:`commit_op` flushes the mutations of one logical operation to
    the block device as a WAL-protected transaction.  Real I/O time is
    *not* added to the simulated clock — the analytic disk model remains
    the cost authority; this store adds durability, not timing.
    """

    def __init__(self, durable: DurableGridFile):
        super().__init__(durable.gf)
        self.durable = durable

    @property
    def engine(self):
        """The underlying :class:`repro.storage.StorageEngine`."""
        return self.durable.engine

    def commit_op(self) -> "int | None":
        """Commit everything dirtied since the last call (one transaction)."""
        return self.durable.commit_op()

    def checkpoint(self) -> None:
        """fsync the device and truncate the WAL."""
        self.durable.checkpoint()

    def close(self) -> None:
        """Detach from the grid file and close the engine."""
        self.durable.close()


def make_store(
    gf: GridFile,
    backend: str = "memory",
    path=None,
    page_size: int = DEFAULT_PAGE_SIZE,
    durability: str = "commit",
) -> GridFileStore:
    """Build a grid-file page store for the given storage backend.

    ``memory`` returns the legacy pure in-memory :class:`GridFileStore`
    (byte-identical simulator behaviour); ``file`` / ``mmap`` persist the
    grid file under ``path`` via a fresh :class:`DurableGridFileStore`.
    """
    if backend == "memory":
        return GridFileStore(gf)
    if path is None:
        raise StorageError(f"store backend {backend!r} requires a path")
    durable = DurableGridFile.create(
        gf, path, backend=backend, page_size=page_size, durability=durability
    )
    return DurableGridFileStore(durable)


class RTreeStore(PageStore):
    """An R-tree as a page store (page = leaf, ordered as ``RTree.leaves``)."""

    def __init__(self, tree: RTree):
        self.tree = tree
        self._leaves = tree.leaves()
        self._index_of = {id(leaf): i for i, leaf in enumerate(self._leaves)}

    @property
    def n_pages(self) -> int:
        return len(self._leaves)

    def query_pages(self, lo, hi) -> np.ndarray:
        hit = self.tree.query_leaves(lo, hi)
        return np.asarray(
            sorted(self._index_of[id(leaf)] for leaf in hit), dtype=np.int64
        )

    def page_records(self, page_id: int) -> np.ndarray:
        return np.asarray(self._leaves[page_id].entries, dtype=np.int64)

    def record_coords(self, record_ids: np.ndarray) -> np.ndarray:
        return self.tree.points[np.asarray(record_ids, dtype=np.int64)]


def as_page_store(obj) -> PageStore:
    """Coerce a GridFile / RTree / PageStore into a :class:`PageStore`."""
    if isinstance(obj, PageStore):
        return obj
    if isinstance(obj, GridFile):
        return GridFileStore(obj)
    if isinstance(obj, RTree):
        return RTreeStore(obj)
    raise TypeError(f"cannot adapt {type(obj).__name__} into a PageStore")
