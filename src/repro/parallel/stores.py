"""Page stores: the storage-structure interface of the cluster simulator.

The SPMD protocol only needs three things from a storage structure: which
pages a query touches, which records a page holds, and the record
coordinates.  :class:`PageStore` captures that contract;
:class:`GridFileStore` and :class:`RTreeStore` adapt the two structures, so
the *parallel R-tree* runs on the same simulated SP-2 as the parallel grid
file (``benchmarks/bench_ext_rtree_cluster.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.gridfile.gridfile import GridFile
from repro.rtree.rtree import RTree

__all__ = ["PageStore", "GridFileStore", "RTreeStore", "as_page_store"]


class PageStore(ABC):
    """Minimal storage interface the coordinator plans against."""

    @property
    @abstractmethod
    def n_pages(self) -> int:
        """Number of disk pages (the declustering domain)."""

    @abstractmethod
    def query_pages(self, lo, hi) -> np.ndarray:
        """Ids of (non-empty) pages intersecting the closed query box."""

    @abstractmethod
    def page_records(self, page_id: int) -> np.ndarray:
        """Record ids stored on a page."""

    @abstractmethod
    def record_coords(self, record_ids: np.ndarray) -> np.ndarray:
        """Coordinates of the given records, shape ``(n, d)``."""


class GridFileStore(PageStore):
    """A grid file as a page store (page = bucket)."""

    def __init__(self, gf: GridFile):
        self.gf = gf

    @property
    def n_pages(self) -> int:
        return self.gf.n_buckets

    def query_pages(self, lo, hi) -> np.ndarray:
        return self.gf.query_buckets(lo, hi)

    def page_records(self, page_id: int) -> np.ndarray:
        return self.gf.records_in_bucket(page_id)

    def record_coords(self, record_ids: np.ndarray) -> np.ndarray:
        return self.gf.points[np.asarray(record_ids, dtype=np.int64)]


class RTreeStore(PageStore):
    """An R-tree as a page store (page = leaf, ordered as ``RTree.leaves``)."""

    def __init__(self, tree: RTree):
        self.tree = tree
        self._leaves = tree.leaves()
        self._index_of = {id(leaf): i for i, leaf in enumerate(self._leaves)}

    @property
    def n_pages(self) -> int:
        return len(self._leaves)

    def query_pages(self, lo, hi) -> np.ndarray:
        hit = self.tree.query_leaves(lo, hi)
        return np.asarray(
            sorted(self._index_of[id(leaf)] for leaf in hit), dtype=np.int64
        )

    def page_records(self, page_id: int) -> np.ndarray:
        return np.asarray(self._leaves[page_id].entries, dtype=np.int64)

    def record_coords(self, record_ids: np.ndarray) -> np.ndarray:
        return self.tree.points[np.asarray(record_ids, dtype=np.int64)]


def as_page_store(obj) -> PageStore:
    """Coerce a GridFile / RTree / PageStore into a :class:`PageStore`."""
    if isinstance(obj, PageStore):
        return obj
    if isinstance(obj, GridFile):
        return GridFileStore(obj)
    if isinstance(obj, RTree):
        return RTreeStore(obj)
    raise TypeError(f"cannot adapt {type(obj).__name__} into a PageStore")
