"""Pure replication/membership controller — no simulator, no clock.

:class:`AutoscaleController` is the decision core of the autoscaler,
deliberately decoupled from the discrete-event engine so the stateful
property harness (``tests/test_autoscale_stateful.py``) can drive it
through arbitrary interleavings of heat spikes, node join/leave and budget
changes without simulating a single disk read.  The engine-side adapter
(:mod:`repro.parallel.autoscale.policy`) feeds it query touches and charges
the simulated cost of every :class:`Action` it emits.

State model
-----------
* A **pool** of provisioned disks, of which the prefix ``[0, active)`` is
  live.  Joining activates the next disks of the pool; leaving drains the
  suffix (so the simulated node list never changes mid-run — capacity
  does).
* Every bucket has exactly one **primary** copy on an active disk, and at
  most one **replica** on a different active disk.  Replicas never exceed
  the storage ``budget``.
* Per-bucket **heat** is an EWMA over query touches
  (:class:`HeatTracker`); the score driving decisions is heat-per-byte
  (``heat / size``), so a small hot bucket beats a big warm one for the
  same storage.

Invariants (checked by :meth:`AutoscaleController.check_invariants` and
pinned by the stateful machine):

1. every primary lives on an active disk — every bucket keeps ≥ 1 alive
   copy through any join/leave/budget interleaving;
2. ``len(replicas) <= budget`` at all times;
3. a control tick emits at most ``max_actions`` actions; a join moves at
   most ``(new - old) · ⌈N/new⌉`` primaries; a leave moves or promotes
   only the primaries stranded on drained disks.

Drain reuses the degraded-mode failover idea: a stranded primary whose
replica survives is **promoted** in place (zero blocks move — the copy is
already there), which is what makes replicated drains cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.autoscale.params import AutoscaleParams

__all__ = ["Action", "HeatTracker", "AutoscaleController"]


@dataclass(frozen=True)
class Action:
    """One physical consequence of a controller decision.

    ``replicate``: copy bucket from primary ``src`` to new replica ``dst``;
    ``evict``: drop the replica on ``src`` (``dst`` = -1, free);
    ``promote``: replica on ``dst`` becomes primary, ``src`` copy is
    abandoned (free — the data is already there);
    ``move``: ship the primary from ``src`` to ``dst``.
    """

    kind: str
    bucket: int
    src: int
    dst: int = -1

    @property
    def copies_block(self) -> bool:
        """Whether this action physically transfers a block."""
        return self.kind in ("replicate", "move")


class HeatTracker:
    """EWMA popularity per bucket, fed by query touches.

    Touches accumulate in a window; :meth:`roll` folds the window into the
    EWMA (one control tick).  Bucket renumbering mirrors the grid file's
    swap-removal so online splits/merges keep ids aligned.
    """

    def __init__(self, n: int, alpha: float):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.ewma = [0.0] * n
        self.window = [0.0] * n

    def __len__(self) -> int:
        return len(self.ewma)

    def touch(self, bucket_ids) -> None:
        """Record one query touch per listed bucket (repeats accumulate)."""
        for b in bucket_ids:
            self.window[int(b)] += 1.0

    def roll(self) -> None:
        """Fold the touch window into the EWMA (one control tick)."""
        a = self.alpha
        for i, w in enumerate(self.window):
            self.ewma[i] = (1.0 - a) * self.ewma[i] + a * w
            self.window[i] = 0.0

    def add(self) -> None:
        """A new bucket appears (grid-file split), initially cold."""
        self.ewma.append(0.0)
        self.window.append(0.0)

    def overwrite(self, dst: int, src: int) -> None:
        """Renumbering: bucket ``src``'s heat takes over slot ``dst``."""
        self.ewma[dst] = self.ewma[src]
        self.window[dst] = self.window[src]

    def pop(self) -> None:
        """Drop the last slot (swap-removal tail)."""
        self.ewma.pop()
        self.window.pop()


class AutoscaleController:
    """Replica placement + elastic membership under a storage budget.

    Parameters
    ----------
    assignment:
        ``(n,)`` initial primary disk per bucket, all within
        ``[0, active_disks)``.
    active_disks:
        Live prefix of the pool at start.
    pool_disks:
        Provisioned disks (upper bound for joins); >= ``active_disks``.
    params:
        The control-loop knobs (:class:`AutoscaleParams`).
    sizes:
        Optional per-bucket record counts for the heat-per-byte score
        (``None`` = unit sizes, score == heat).
    expand_fn:
        Optional ``f(assignment, old, new) -> target`` producing the
        join-time rebalance (e.g. :func:`repro.core.redistribute.
        minimax_expand`); the fallback is a geometry-free balanced steal.
        Only buckets whose target is a **new** disk may move.
    """

    def __init__(
        self,
        assignment,
        active_disks: int,
        pool_disks: int,
        params: "AutoscaleParams | None" = None,
        sizes=None,
        expand_fn=None,
    ):
        self.p = params or AutoscaleParams()
        self.active = int(active_disks)
        self.pool = int(pool_disks)
        if not 1 <= self.active <= self.pool:
            raise ValueError(
                f"need 1 <= active_disks ({self.active}) <= pool_disks ({self.pool})"
            )
        self.assignment = [int(d) for d in assignment]
        for d in self.assignment:
            if not 0 <= d < self.active:
                raise ValueError(f"primary disk {d} outside the active prefix")
        n = len(self.assignment)
        if sizes is None:
            self.sizes = [1.0] * n
        else:
            # Normalize to mean 1 so the heat-per-byte score (and the
            # add/evict watermarks) stay in touches-per-tick units: a
            # mean-sized bucket's score equals its heat, smaller buckets
            # score higher per touch, larger ones lower.
            raw = [max(1.0, float(s)) for s in sizes]
            if len(raw) != n:
                raise ValueError("sizes must match the assignment length")
            mean = sum(raw) / len(raw) if raw else 1.0
            self.sizes = [s / mean for s in raw]
        self.heat = HeatTracker(n, self.p.alpha)
        self.budget = self.p.budget
        #: bucket -> replica disk (at most one replica per bucket).
        self.replicas: dict[int, int] = {}
        #: bucket -> control tick its replica was created (dwell guard).
        self.born: dict[int, int] = {}
        self.tick = 0
        #: Copies (primary + replica) per pool disk.
        self.load = [0] * self.pool
        for d in self.assignment:
            self.load[d] += 1
        self.expand_fn = expand_fn

    # -- observation ---------------------------------------------------------

    def observe(self, bucket_ids) -> None:
        """Feed the touches of one completed query into the heat tracker."""
        self.heat.touch(bucket_ids)

    def score(self, b: int) -> float:
        """Heat-per-byte of bucket ``b`` (the greedy ranking key)."""
        return self.heat.ewma[b] / self.sizes[b]

    def copies(self, b: int) -> list[int]:
        """Disks holding bucket ``b``, primary first."""
        r = self.replicas.get(b)
        return [self.assignment[b]] if r is None else [self.assignment[b], r]

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    # -- primitive actions ---------------------------------------------------

    def _evict(self, b: int) -> Action:
        d = self.replicas.pop(b)
        self.born.pop(b, None)
        self.load[d] -= 1
        return Action("evict", b, d)

    def heat_loads(self) -> list[float]:
        """Expected hot traffic per active disk.

        Each bucket's score is split evenly across its copies (the router
        alternates between them), so a disk's heat load is the sum of the
        shares it hosts.  Placement ranks by this rather than the raw copy
        count: a disk with few buckets may still be the worst destination
        because one of them is the current hot spot.
        """
        hl = [0.0] * self.pool
        for b, primary in enumerate(self.assignment):
            share = self.score(b) / (2.0 if b in self.replicas else 1.0)
            hl[primary] += share
            r = self.replicas.get(b)
            if r is not None:
                hl[r] += share
        return hl

    def replicate(self, b: int) -> "Action | None":
        """Create a replica of ``b`` on the coolest other active disk.

        Returns ``None`` when no eligible disk exists (already replicated,
        single-disk farm, or budget exhausted).
        """
        if b in self.replicas or self.n_replicas >= self.budget:
            return None
        primary = self.assignment[b]
        cands = [d for d in range(self.active) if d != primary]
        if not cands:
            return None
        hl = self.heat_loads()
        dst = min(cands, key=lambda d: (hl[d], self.load[d], d))
        self.replicas[b] = dst
        self.born[b] = self.tick
        self.load[dst] += 1
        return Action("replicate", b, primary, dst)

    def drop_replicas(self, b: int) -> list[Action]:
        """Invalidate the replica of ``b`` (its content changed — online
        write-invalidation coherence).  Free: metadata only."""
        return [self._evict(b)] if b in self.replicas else []

    # -- the control loop ----------------------------------------------------

    def control_step(self) -> list[Action]:
        """One tick: roll heat, evict cooled replicas, replicate hot buckets.

        Emits at most ``max_actions`` actions (evictions first — they free
        budget for the adds that follow).  A replica survives a cold tick
        while younger than ``min_dwell`` ticks, and is only created once
        its score clears ``add_heat`` — the watermark gap plus the dwell is
        the anti-thrash hysteresis.
        """
        self.tick += 1
        self.heat.roll()
        p = self.p
        actions: list[Action] = []
        for b in sorted(self.replicas):
            if len(actions) >= p.max_actions:
                return actions
            if self.score(b) <= p.evict_heat and self.tick - self.born[b] >= p.min_dwell:
                actions.append(self._evict(b))
        hot = [
            b
            for b in range(len(self.assignment))
            if b not in self.replicas and self.score(b) > p.add_heat
        ]
        hot.sort(key=lambda b: (-self.score(b), b))
        for b in hot:
            if len(actions) >= p.max_actions or self.n_replicas >= self.budget:
                break
            act = self.replicate(b)
            if act is not None:
                actions.append(act)
        return actions

    def set_budget(self, budget: int) -> list[Action]:
        """Change the storage budget; trims the coldest replicas at once."""
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self.budget = int(budget)
        actions = []
        while self.n_replicas > self.budget:
            coldest = min(self.replicas, key=lambda b: (self.score(b), b))
            actions.append(self._evict(coldest))
        return actions

    # -- elastic membership --------------------------------------------------

    def join(self, count: int = 1) -> list[Action]:
        """Activate the next ``count`` pool disks and rebalance primaries.

        The rebalance target comes from ``expand_fn`` (minimax-style
        bounded movement) or the internal balanced steal; either way only
        buckets heading to a *new* disk move, and at most
        ``count · ⌈N/new⌉`` of them — the bounded-movement contract.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        old, new = self.active, self.active + count
        if new > self.pool:
            raise ValueError(f"cannot activate {new} disks from a pool of {self.pool}")
        if self.expand_fn is not None:
            target = [int(d) for d in self.expand_fn(np.asarray(self.assignment), old, new)]
            if len(target) != len(self.assignment):
                raise ValueError("expand_fn changed the number of buckets")
        else:
            target = self._steal_balanced(old, new)
        self.active = new
        actions: list[Action] = []
        for b, dst in enumerate(target):
            src = self.assignment[b]
            if dst == src:
                continue
            if not old <= dst < new:
                raise ValueError(
                    f"expand_fn moved bucket {b} to disk {dst}, not a new disk"
                )
            if self.replicas.get(b) == dst:
                # The new primary location already holds the replica copy:
                # promote it instead of shipping a duplicate block.
                del self.replicas[b]
                self.born.pop(b, None)
                self.load[src] -= 1
                self.assignment[b] = dst
                actions.append(Action("promote", b, src, dst))
                continue
            self.assignment[b] = dst
            self.load[src] -= 1
            self.load[dst] += 1
            actions.append(Action("move", b, src, dst))
        return actions

    def _steal_balanced(self, old: int, new: int) -> list[int]:
        """Geometry-free join target: each new disk steals the lowest bucket
        ids from the currently most-loaded over-quota disk until balanced
        (the shape of ``minimax_expand`` without the proximity rule)."""
        n = len(self.assignment)
        quota = -(-n // new)
        out = list(self.assignment)
        prim = [0] * new
        for d in out:
            prim[d] += 1
        for t in range(old, new):
            while prim[t] < quota:
                over = [d for d in range(new) if d != t and prim[d] > quota]
                if not over:
                    break
                src = max(over, key=lambda d: (prim[d], -d))
                b = min(i for i in range(n) if out[i] == src)
                out[b] = t
                prim[src] -= 1
                prim[t] += 1
        return out

    def leave(self, count: int = 1) -> list[Action]:
        """Drain the last ``count`` active disks.

        Replicas on drained disks vanish with their storage; a stranded
        primary whose replica survives is *promoted* (free — the drain
        reuse of the failover path), otherwise it moves to the least-loaded
        surviving disk.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        new_active = self.active - count
        if new_active < 1:
            raise ValueError(
                f"cannot drain {count} of {self.active} active disks"
            )
        actions: list[Action] = []
        for b in sorted(b for b, d in self.replicas.items() if d >= new_active):
            actions.append(self._evict(b))
        for b in range(len(self.assignment)):
            src = self.assignment[b]
            if src < new_active:
                continue
            rd = self.replicas.get(b)
            if rd is not None:
                del self.replicas[b]
                self.born.pop(b, None)
                self.load[src] -= 1
                self.assignment[b] = rd
                actions.append(Action("promote", b, src, rd))
            else:
                dst = min(range(new_active), key=lambda d: (self.load[d], d))
                self.assignment[b] = dst
                self.load[src] -= 1
                self.load[dst] += 1
                actions.append(Action("move", b, src, dst))
        self.active = new_active
        return actions

    # -- online renumbering hooks (grid-file listener relays) ----------------

    def add_bucket(self, disk: int) -> None:
        """A split created a bucket, placed on ``disk`` by the placement
        policy (already an active disk in online runs)."""
        if not 0 <= disk < self.active:
            raise ValueError(f"new bucket placed on inactive disk {disk}")
        self.assignment.append(int(disk))
        self.sizes.append(1.0)
        self.heat.add()
        self.load[disk] += 1

    def set_primary(self, b: int, disk: int) -> None:
        """The online driver moved bucket ``b``'s primary to ``disk``."""
        if not 0 <= disk < self.active:
            raise ValueError(f"primary moved to inactive disk {disk}")
        src = self.assignment[b]
        if src == disk:
            return
        self.assignment[b] = int(disk)
        self.load[src] -= 1
        self.load[disk] += 1
        if self.replicas.get(b) == disk:
            # Primary landed on its replica's disk; the replica is redundant.
            self._evict(b)

    def remove_bucket(self, bucket_id: int, moved_id: "int | None") -> None:
        """Mirror the grid file's swap-removal renumbering."""
        self.drop_replicas(bucket_id)
        if moved_id is None:
            self.load[self.assignment[bucket_id]] -= 1
        else:
            self.drop_replicas(moved_id)
            self.load[self.assignment[bucket_id]] -= 1
            self.assignment[bucket_id] = self.assignment[moved_id]
            self.sizes[bucket_id] = self.sizes[moved_id]
            self.heat.overwrite(bucket_id, moved_id)
        self.assignment.pop()
        self.sizes.pop()
        self.heat.pop()

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` when any structural invariant is broken
        (driven after every rule by the stateful harness)."""
        n = len(self.assignment)
        if not 1 <= self.active <= self.pool:
            raise AssertionError(f"active {self.active} outside [1, {self.pool}]")
        if len(self.sizes) != n or len(self.heat) != n:
            raise AssertionError("heat/size arrays out of sync with assignment")
        for b, d in enumerate(self.assignment):
            if not 0 <= d < self.active:
                raise AssertionError(f"bucket {b} primary on inactive disk {d}")
        if self.n_replicas > self.budget:
            raise AssertionError(
                f"{self.n_replicas} replicas exceed budget {self.budget}"
            )
        for b, d in self.replicas.items():
            if not 0 <= b < n:
                raise AssertionError(f"replica of unknown bucket {b}")
            if not 0 <= d < self.active:
                raise AssertionError(f"replica of {b} on inactive disk {d}")
            if d == self.assignment[b]:
                raise AssertionError(f"replica of {b} collocated with its primary")
        want = [0] * self.pool
        for d in self.assignment:
            want[d] += 1
        for d in self.replicas.values():
            want[d] += 1
        if want != self.load:
            raise AssertionError(f"load ledger drifted: {self.load} != {want}")
