"""The ``AutoscalePolicy`` seam: controller decisions on pipeline resources.

:class:`AutoscalePolicy` is the pluggable hook the request pipeline calls
at three points — route, failover, query completion.  The default
configuration (``ClusterParams.autoscale = None``) installs nothing, and
the ``null`` policy installs a pure pass-through: both are byte-for-byte
identical to a pre-autoscale run (``tests/test_autoscale_neutrality.py``
pins this against the PR 5 goldens).

The replicating policies own routing outright (``routes = True``): every
bucket read goes to whichever copy — primary or autoscaler-created replica
— has been handed the fewest blocks this run, and failover regroups around
suspected nodes using the surviving copies.  Every block a controller
action physically copies is charged to the simulated resources it would
occupy (source disk read, NIC transfer, destination disk write), so the
latency benefit of replication and the cost of making the copies meet in
the same simulated clock.

Observability: ``autoscale.*`` counters/gauges land in the run's
:class:`~repro.obs.MetricsRegistry` and the controller work is profiled
under the ``autoscale.control`` / ``autoscale.membership`` phases (see
``docs/observability.md``).
"""

from __future__ import annotations

import numpy as np

from repro.obs import PROFILER
from repro.parallel.autoscale.controller import AutoscaleController
from repro.parallel.autoscale.params import AutoscaleParams
from repro.parallel.engine.replicas import regroup_requests

__all__ = [
    "AutoscalePolicy",
    "NullAutoscale",
    "StaticReplicate",
    "HeatReplicate",
    "AUTOSCALE_POLICIES",
    "make_autoscale_policy",
]


class AutoscalePolicy:
    """Base seam: the null behaviour every hook defaults to."""

    name = "base"
    #: Whether the policy owns routing (replica-aware read placement and
    #: failover).  False delegates both to the replica-selection seam.
    routes = False
    #: Whether the policy runs the closed control loop on query completions.
    adaptive = False

    def bind(self, pipeline) -> None:
        """Attach to one pipeline run (called once, before any routing)."""
        self.pipe = pipeline

    def route(self, plan, requests):
        """Map a plan's primary-grouped requests to the ones actually sent."""
        return self.pipe.selector.route(plan, requests)

    def failover(self, plan, req):
        """Re-route one timed-out request after its node was suspected."""
        return self.pipe.selector.failover(plan, req)

    def query_complete(self, qid: int) -> None:
        """A query finished — the adaptive policies observe and may act."""

    # -- online-engine coherence hooks (no-ops unless replicating) -----------

    def bucket_added(self, disk: int) -> None:
        """A grid-file split created a bucket on ``disk``."""

    def bucket_dirty(self, bucket_id: int) -> None:
        """A write changed the bucket — replicas must be invalidated."""

    def bucket_removed(self, bucket_id: int, moved_id: "int | None") -> None:
        """Swap-removal renumbering (mirror of the driver's bookkeeping)."""

    def primary_moved(self, bucket_id: int, disk: int) -> None:
        """The online driver shipped the primary copy to ``disk``."""


class NullAutoscale(AutoscalePolicy):
    """Measurement-only: no replicas, no instruments, no behaviour change."""

    name = "null"

    def __init__(self, params: "AutoscaleParams | None" = None):
        self.p = params or AutoscaleParams(policy="null")


class _ReplicatedAutoscale(AutoscalePolicy):
    """Shared machinery of the replicating policies.

    Owns an :class:`AutoscaleController`, routes reads across its copies,
    charges the cost of every copied block, and keeps the movement /
    replica counters the report and bench gates read.
    """

    routes = True

    def __init__(self, params: AutoscaleParams):
        self.p = params
        self.replicas_created = 0
        self.replicas_evicted = 0
        self.promotions = 0
        self.moves = 0
        self.control_steps = 0
        self.joins = 0
        self.leaves = 0
        self.peak_replicas = 0
        self._completed = 0

    def bind(self, pipeline) -> None:
        super().bind(pipeline)
        store = pipeline.owner.store
        sizes = [store.page_records(b).size for b in range(store.n_pages)]
        self._build_controller(
            active=pipeline.n_disks, expand_fn=None, sizes=sizes
        )
        self._rr: dict[int, int] = {}

    def _build_controller(self, active: int, expand_fn, sizes=None) -> None:
        if sizes is None:
            sizes = self.ctl.sizes if hasattr(self, "ctl") else None
        self.ctl = AutoscaleController(
            [int(d) for d in self.pipe.coordinator.assignment],
            active_disks=active,
            pool_disks=self.pipe.n_disks,
            params=self.p,
            sizes=sizes,
            expand_fn=expand_fn,
        )
        self._bootstrap()

    def configure(self, active: int, expand_fn=None) -> None:
        """Driver hook: shrink the live prefix below the provisioned pool
        and install the join-time rebalancer (before any query runs)."""
        self._build_controller(active=active, expand_fn=expand_fn)
        self._sync_assignment()

    def _bootstrap(self) -> None:
        """Pre-run replica provisioning (free — it predates the workload)."""

    # -- routing -------------------------------------------------------------

    def _choose(self, b: int, failed: set) -> "int | None":
        # Per-bucket round-robin over the live copies.  A cumulative
        # per-disk counter would dump the whole stream onto a freshly
        # created replica until it "caught up" with the primary's history;
        # alternating per bucket splits the load 50/50 from the first
        # request after the copy lands.
        cands = [d for d in self.ctl.copies(b) if d not in failed]
        if not cands:
            return None
        i = self._rr.get(b, 0)
        self._rr[b] = i + 1
        return cands[i % len(cands)]

    def route(self, plan, requests):
        pipe = self.pipe
        failed = pipe.suspected_disks()
        bids = [int(b) for req in requests for b in req.bucket_ids]
        return regroup_requests(
            pipe, plan, bids, lambda b: self._choose(b, failed)
        )

    def failover(self, plan, req):
        failed = self.pipe.suspected_disks()
        return regroup_requests(
            self.pipe, plan, req.bucket_ids, lambda b: self._choose(b, failed)
        )

    # -- control loop ---------------------------------------------------------

    def query_complete(self, qid: int) -> None:
        plan = self.pipe.plans[qid]
        if plan is None:
            return
        bids = [int(b) for r in plan.requests for b in r.bucket_ids]
        if bids:
            self.ctl.observe(bids)
        self._completed += 1
        if self.adaptive and self._completed % self.p.interval == 0:
            with PROFILER.phase("autoscale.control"):
                actions = self.ctl.control_step()
            self.control_steps += 1
            self.pipe.metrics.counter("autoscale.control_steps").inc()
            self._apply(actions)

    def apply_event(self, event) -> None:
        """Driver hook: one membership/budget event fires on the sim clock."""
        with PROFILER.phase("autoscale.membership"):
            if event.kind == "join":
                actions = self.ctl.join(event.count)
                self.joins += 1
                self.pipe.metrics.counter("autoscale.joins").inc()
            elif event.kind == "leave":
                actions = self.ctl.leave(event.count)
                self.leaves += 1
                self.pipe.metrics.counter("autoscale.leaves").inc()
            elif event.kind == "budget":
                actions = self.ctl.set_budget(event.budget)
            else:  # pragma: no cover - ScalePlan validates kinds
                raise ValueError(f"unknown scale event kind {event.kind!r}")
        self._apply(actions)
        self._sync_assignment()
        self.pipe.metrics.gauge("autoscale.active_disks").set(self.ctl.active)

    # -- action application ----------------------------------------------------

    def _apply(self, actions, charge: bool = True) -> None:
        metrics = self.pipe.metrics
        for a in actions:
            if a.copies_block and charge:
                self._charge_copy(a.src, a.dst)
            if a.kind == "replicate":
                self.replicas_created += 1
                metrics.counter("autoscale.replicas.created").inc()
            elif a.kind == "evict":
                self.replicas_evicted += 1
                metrics.counter("autoscale.replicas.evicted").inc()
            elif a.kind == "promote":
                self.promotions += 1
                metrics.counter("autoscale.promotions").inc()
            elif a.kind == "move":
                self.moves += 1
                metrics.counter("autoscale.moves").inc()
        self.peak_replicas = max(self.peak_replicas, self.ctl.n_replicas)
        metrics.gauge("autoscale.replica_count").set(self.ctl.n_replicas)

    def _charge_copy(self, src: int, dst: int) -> None:
        """Reserve the simulated cost of shipping one block ``src -> dst``:
        source disk read, cross-node NIC transfer, destination disk write."""
        pipe = self.pipe
        dpn = pipe.params.disks_per_node
        snode = pipe.nodes[src // dpn]
        service = snode.disk_model.service_time(1, snode.disk_slowdown[src % dpn])
        _, read_end = snode.disks[src % dpn].reserve(pipe.sim.now, service)
        arrive = read_end
        if src // dpn != dst // dpn:
            t = pipe.net.transfer_time(pipe.params.disk.block_bytes)
            _, send_end = snode.nic.reserve(read_end, t)
            pipe.stats.comm_time += t + pipe.net.latency
            arrive = send_end + pipe.net.latency
        dnode = pipe.nodes[dst // dpn]
        service = dnode.disk_model.service_time(1, dnode.disk_slowdown[dst % dpn])
        dnode.disks[dst % dpn].reserve(arrive, service)

    def _sync_assignment(self) -> None:
        """Publish the controller's primary map to the coordinator (primaries
        only change on membership events; online primary moves flow the
        other way, driver -> controller)."""
        self.pipe.coordinator.assignment = np.asarray(
            self.ctl.assignment, dtype=np.int64
        )

    # -- online-engine coherence ----------------------------------------------

    def bucket_added(self, disk: int) -> None:
        self.ctl.add_bucket(disk)

    def bucket_dirty(self, bucket_id: int) -> None:
        self._apply(self.ctl.drop_replicas(bucket_id))

    def bucket_removed(self, bucket_id: int, moved_id: "int | None") -> None:
        self.ctl.remove_bucket(bucket_id, moved_id)

    def primary_moved(self, bucket_id: int, disk: int) -> None:
        self.ctl.set_primary(bucket_id, disk)


class StaticReplicate(_ReplicatedAutoscale):
    """The equal-storage, heat-oblivious baseline.

    Spends the same replica budget as ``heat-replicate``, but picks the
    buckets by *size* (largest first — the best guess available without
    popularity data) once, before the run, and never adapts.  The bench's
    trade-off curves measure exactly what closing the loop buys over this.
    """

    name = "static"

    def _bootstrap(self) -> None:
        order = sorted(
            range(len(self.ctl.assignment)), key=lambda b: (-self.ctl.sizes[b], b)
        )
        for b in order:
            if self.ctl.n_replicas >= self.ctl.budget:
                break
            self.ctl.replicate(b)
        self.peak_replicas = max(self.peak_replicas, self.ctl.n_replicas)


class HeatReplicate(_ReplicatedAutoscale):
    """The closed loop: EWMA heat in, budgeted greedy replication out."""

    name = "heat-replicate"
    adaptive = True


#: Registered autoscale policies, by name.
AUTOSCALE_POLICIES = {
    NullAutoscale.name: NullAutoscale,
    StaticReplicate.name: StaticReplicate,
    HeatReplicate.name: HeatReplicate,
}


def make_autoscale_policy(spec) -> AutoscalePolicy:
    """Resolve a policy name or :class:`AutoscaleParams` to a fresh instance.

    Raises ``ValueError`` listing the registered names for unknown ones.
    """
    if isinstance(spec, str):
        params = AutoscaleParams(policy=spec)
    elif isinstance(spec, AutoscaleParams):
        params = spec
    else:
        raise TypeError(
            f"autoscale spec must be a policy name or AutoscaleParams, "
            f"got {type(spec).__name__}"
        )
    try:
        cls = AUTOSCALE_POLICIES[params.policy]
    except KeyError:
        raise ValueError(
            f"unknown autoscale policy {params.policy!r}; "
            f"choose from {sorted(AUTOSCALE_POLICIES)}"
        ) from None
    return cls(params)
