"""Elastic run driver: a declustered store under a scale plan.

:class:`AutoscaleCluster` runs a closed-loop workload on a cluster whose
capacity changes *mid-run*: a :class:`ScalePlan` schedules node joins,
drains and budget changes on the simulated clock, and the autoscale policy
(:mod:`repro.parallel.autoscale.policy`) absorbs each event — bounded
primary movement on join (``minimax_expand`` when the store exposes bucket
geometry), replica promotion on drain, immediate trim on budget cuts.

The simulated node list is **pre-provisioned**: the pool holds every disk
the plan will ever activate, and membership is the live prefix.  That
keeps the DES resource set fixed while capacity varies, which is also how
the movement accounting stays honest — activating a disk is free, filling
it with data is charged block by block.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._util import as_rng
from repro.core.redistribute import minimax_expand
from repro.obs import PROFILER
from repro.parallel.autoscale.params import AutoscaleParams
from repro.parallel.autoscale.policy import make_autoscale_policy
from repro.parallel.engine.params import ClusterParams
from repro.parallel.engine.pipeline import RequestPipeline
from repro.parallel.engine.runners import ParallelGridFile
from repro.parallel.engine.stats import PerfReport

__all__ = ["ScaleEvent", "ScalePlan", "AutoscaleReport", "AutoscaleCluster"]


@dataclass(frozen=True)
class ScaleEvent:
    """One scheduled capacity change (see :class:`ScalePlan`)."""

    time: float
    kind: str  # "join" | "leave" | "budget"
    count: int = 0
    budget: int = 0


class ScalePlan:
    """A builder for the membership/budget timeline of one elastic run."""

    def __init__(self):
        self.events: list[ScaleEvent] = []

    def _add(self, event: ScaleEvent) -> "ScalePlan":
        if event.time < 0:
            raise ValueError(f"event time must be >= 0, got {event.time}")
        self.events.append(event)
        return self

    def join(self, time: float, disks: int = 1) -> "ScalePlan":
        """Activate ``disks`` more pool disks at ``time``."""
        if disks < 1:
            raise ValueError(f"disks must be >= 1, got {disks}")
        return self._add(ScaleEvent(float(time), "join", count=disks))

    def leave(self, time: float, disks: int = 1) -> "ScalePlan":
        """Drain the last ``disks`` active disks at ``time``."""
        if disks < 1:
            raise ValueError(f"disks must be >= 1, got {disks}")
        return self._add(ScaleEvent(float(time), "leave", count=disks))

    def set_budget(self, time: float, budget: int) -> "ScalePlan":
        """Change the replica storage budget at ``time``."""
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        return self._add(ScaleEvent(float(time), "budget", budget=budget))

    def sorted_events(self) -> list[ScaleEvent]:
        """Events by firing time (stable — ties keep insertion order)."""
        return sorted(self.events, key=lambda e: e.time)

    def capacity_profile(self, start: int) -> tuple[int, int]:
        """(peak, final) active-disk counts when starting from ``start``;
        raises when the plan ever drains the farm below one disk."""
        cur = peak = start
        for ev in self.sorted_events():
            if ev.kind == "join":
                cur += ev.count
            elif ev.kind == "leave":
                cur -= ev.count
                if cur < 1:
                    raise ValueError("scale plan drains the farm below one disk")
            peak = max(peak, cur)
        return peak, cur


@dataclass
class AutoscaleReport:
    """Results of one elastic run: the perf report plus the control ledger."""

    perf: PerfReport
    n_disks_start: int
    n_disks_end: int
    pool_disks: int
    replicas_created: int
    replicas_evicted: int
    promotions: int
    #: Primaries shipped by membership rebalancing.
    moves: int
    control_steps: int
    joins: int
    leaves: int
    final_replicas: int
    peak_replicas: int

    @property
    def blocks_copied(self) -> int:
        """Physical block transfers the autoscaler caused (movement axis)."""
        return self.replicas_created + self.moves


class AutoscaleCluster:
    """A declustered store with dynamic replication and elastic membership.

    Parameters
    ----------
    store:
        The declustered storage structure (grid file, R-tree, or any
        :class:`~repro.parallel.stores.PageStore`).
    assignment:
        ``(n_pages,)`` initial disk ids over the *starting* farm.
    n_disks:
        Active disks at the start of the run.
    params:
        :class:`~repro.parallel.ClusterParams`; ``params.autoscale``
        defaults to ``AutoscaleParams()`` (the ``heat-replicate`` loop).
    plan:
        Optional :class:`ScalePlan` of membership/budget events (requires a
        replicating policy — the ``null`` policy has no controller).
    pool_disks:
        Provisioned disks (defaults to the plan's peak requirement).
    seed:
        Tie-breaking seed for the join-time ``minimax_expand``.
    """

    def __init__(
        self,
        store,
        assignment: np.ndarray,
        n_disks: int,
        params: "ClusterParams | None" = None,
        plan: "ScalePlan | None" = None,
        pool_disks: "int | None" = None,
        seed=1996,
    ):
        params = params or ClusterParams()
        if params.autoscale is None:
            params = replace(params, autoscale=AutoscaleParams())
        self.params = params
        self.plan = plan or ScalePlan()
        self.policy_name = make_autoscale_policy(params.autoscale).name
        if self.plan.events and self.policy_name == "null":
            raise ValueError(
                "membership/budget events require a replicating autoscale "
                "policy; the null policy has no controller"
            )
        peak, final = self.plan.capacity_profile(int(n_disks))
        pool = int(pool_disks) if pool_disks is not None else peak
        if pool < peak:
            raise ValueError(
                f"pool_disks ({pool}) below the plan's peak capacity ({peak})"
            )
        dpn = params.disks_per_node
        for value, label in ((n_disks, "n_disks"), (pool, "pool_disks")):
            if value % dpn:
                raise ValueError(
                    f"{label} ({value}) must be a multiple of disks_per_node ({dpn})"
                )
        for ev in self.plan.events:
            if ev.kind in ("join", "leave") and ev.count % dpn:
                raise ValueError(
                    f"{ev.kind} of {ev.count} disks is not whole nodes "
                    f"(disks_per_node={dpn})"
                )
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.size and assignment.max() >= n_disks:
            raise ValueError(
                "initial assignment uses disks beyond the starting farm"
            )
        self.n_disks_start = int(n_disks)
        self.n_disks_end = final
        self.pool_disks = pool
        self.seed = seed
        self.pgf = ParallelGridFile(store, assignment, pool, params)

    def _expand_fn(self):
        """Bounded-movement join rebalancer when the store has geometry."""
        gf = getattr(self.pgf.store, "gf", None)
        if gf is None or not hasattr(gf, "bucket_regions"):
            return None  # controller falls back to the balanced steal
        rng = as_rng(self.seed)

        def expand(assignment, old_disks, new_disks):
            lo, hi = gf.bucket_regions()
            return minimax_expand(
                lo, hi, gf.scales.lengths, assignment, old_disks, new_disks, rng=rng
            )

        return expand

    def run(self, queries, tracer=None) -> AutoscaleReport:
        """Closed-system run under the scale plan; returns the full ledger."""
        pipe = RequestPipeline(self.pgf, queries, tracer=tracer)
        policy = pipe.autoscale
        if policy.routes:
            policy.configure(self.n_disks_start, expand_fn=self._expand_fn())
            for ev in self.plan.sorted_events():
                pipe.sim.schedule_at(ev.time, policy.apply_event, ev)
        n = len(pipe.queries)
        state = {"next": 0}

        def submit_next(_qid=None):
            if state["next"] < n:
                qid = state["next"]
                state["next"] += 1
                pipe.submit(qid)

        pipe.on_complete = submit_next
        for _ in range(max(1, self.params.pipeline_depth)):
            submit_next()
        with PROFILER.phase("cluster.run"):
            pipe.sim.run()
        perf = pipe.report()
        if not policy.routes:
            return AutoscaleReport(
                perf=perf,
                n_disks_start=self.n_disks_start,
                n_disks_end=self.n_disks_end,
                pool_disks=self.pool_disks,
                replicas_created=0,
                replicas_evicted=0,
                promotions=0,
                moves=0,
                control_steps=0,
                joins=0,
                leaves=0,
                final_replicas=0,
                peak_replicas=0,
            )
        return AutoscaleReport(
            perf=perf,
            n_disks_start=self.n_disks_start,
            n_disks_end=self.n_disks_end,
            pool_disks=self.pool_disks,
            replicas_created=policy.replicas_created,
            replicas_evicted=policy.replicas_evicted,
            promotions=policy.promotions,
            moves=policy.moves,
            control_steps=policy.control_steps,
            joins=policy.joins,
            leaves=policy.leaves,
            final_replicas=policy.ctl.n_replicas,
            peak_replicas=policy.peak_replicas,
        )
