"""Popularity-driven dynamic replication with elastic scale-out.

The paper's declustering schemes fix the disk count up front and treat all
buckets as equally popular; a production farm faces neither assumption.
This package closes the loop the ROADMAP's north star needs:

* :class:`~repro.parallel.autoscale.controller.HeatTracker` — per-bucket
  EWMA popularity fed from completed queries;
* :class:`~repro.parallel.autoscale.controller.AutoscaleController` — the
  pure decision core: budgeted greedy replication (heat-per-byte, with
  hysteresis), elastic membership (join via ``minimax_expand``-style
  bounded movement, drain via replica promotion — the failover path
  reused), all exercisable without a simulator;
* :class:`~repro.parallel.autoscale.policy.AutoscalePolicy` — the pipeline
  seam (``ClusterParams.autoscale``; off by default and byte-neutral);
* :class:`~repro.parallel.autoscale.driver.AutoscaleCluster` — the elastic
  run driver executing a :class:`~repro.parallel.autoscale.driver.ScalePlan`
  on the simulated clock.

See ``docs/autoscale.md`` for the control loop, knobs and invariants.
"""

from repro.parallel.autoscale.controller import Action, AutoscaleController, HeatTracker
from repro.parallel.autoscale.driver import (
    AutoscaleCluster,
    AutoscaleReport,
    ScaleEvent,
    ScalePlan,
)
from repro.parallel.autoscale.params import AutoscaleParams
from repro.parallel.autoscale.policy import (
    AUTOSCALE_POLICIES,
    AutoscalePolicy,
    HeatReplicate,
    NullAutoscale,
    StaticReplicate,
    make_autoscale_policy,
)

__all__ = [
    "Action",
    "AutoscaleController",
    "HeatTracker",
    "AutoscaleParams",
    "AutoscalePolicy",
    "NullAutoscale",
    "StaticReplicate",
    "HeatReplicate",
    "AUTOSCALE_POLICIES",
    "make_autoscale_policy",
    "AutoscaleCluster",
    "AutoscaleReport",
    "ScaleEvent",
    "ScalePlan",
]
