"""Knobs of the popularity-driven autoscaler.

:class:`AutoscaleParams` configures the closed control loop of
:mod:`repro.parallel.autoscale`: how fast per-bucket heat decays, how often
the controller runs, the replica storage budget, and the hysteresis that
keeps the loop from thrashing (watermark gap, minimum dwell, per-step
action cap).  The numeric invariants are validated eagerly in
``__post_init__``; the ``policy`` name is resolved by
:func:`repro.parallel.autoscale.policy.make_autoscale_policy` (which lists
the registered names on a miss).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AutoscaleParams"]


@dataclass(frozen=True)
class AutoscaleParams:
    """Configuration of the replication controller and its policy seam."""

    #: Registered policy name: "null" (measurement only, byte-identical to
    #: an unconfigured run), "static" (heat-oblivious size-ranked replicas,
    #: the equal-storage baseline) or "heat-replicate" (the closed loop).
    policy: str = "heat-replicate"
    #: Storage budget: maximum replica copies alive at once (primaries are
    #: not counted — they are the data, not the overhead).
    budget: int = 16
    #: EWMA smoothing of per-bucket heat: ``h ← (1-α)·h + α·touches`` per
    #: control tick.  1.0 = last window only, small = long memory.
    alpha: float = 0.4
    #: Completed queries between control-loop ticks.
    interval: int = 16
    #: Replicate a bucket when its heat-per-byte score exceeds this.
    add_heat: float = 1.0
    #: Evict a replica when its score falls to or below this (must not
    #: exceed ``add_heat``; the gap is the hysteresis band).
    evict_heat: float = 0.25
    #: Control ticks a fresh replica survives even when cold (anti-thrash).
    min_dwell: int = 2
    #: Maximum replicate/evict actions per control tick (movement bound).
    max_actions: int = 8

    def __post_init__(self):
        if self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.interval < 1:
            raise ValueError(f"interval must be >= 1, got {self.interval}")
        if self.add_heat < 0 or self.evict_heat < 0:
            raise ValueError("heat watermarks must be non-negative")
        if self.evict_heat > self.add_heat:
            raise ValueError(
                f"evict_heat ({self.evict_heat}) must not exceed "
                f"add_heat ({self.add_heat}) — the gap is the hysteresis band"
            )
        if self.min_dwell < 0:
            raise ValueError(f"min_dwell must be >= 0, got {self.min_dwell}")
        if self.max_actions < 1:
            raise ValueError(f"max_actions must be >= 1, got {self.max_actions}")
