"""Mid-run fault injection for the simulated cluster.

The static availability story (:func:`repro.parallel.apply_failures`)
rewrites the assignment *before* a run; this module injects faults *while
queries are in flight*, which is what a production deployment of parallel
grid files actually survives.  A :class:`FaultPlan` is a schedule of
:class:`FaultEvent`\\ s — deterministic, or drawn from seeded MTBF/MTTR
exponentials via :meth:`FaultPlan.random_crashes` — and a
:class:`FaultInjector` binds the plan to one engine run: at each event time
it mutates the degradable per-node/per-disk state that
:meth:`repro.parallel.node.WorkerNode.serve` and the cost models consult.

Fault kinds
-----------
``node_crash``
    The node stops serving: requests delivered while it is down are dropped
    (the coordinator's timeout/retry/failover machinery recovers them) and
    its buffer cache is lost.
``node_recover``
    The node restarts cold; a recovery heartbeat clears the coordinator's
    suspicion after ``ClusterParams.heartbeat_delay``.
``disk_slowdown``
    One local disk serves every read ``factor``× slower (1.0 restores it).
``link_loss``
    The node's link drops each delivered message (either direction) with
    probability ``loss_prob``, using the plan's seeded RNG (0.0 restores).

Determinism: events are applied in (time, insertion-order) order on the same
event loop as the protocol, and the loss RNG is consulted only at delivery
points of lossy links — so the same plan + seed reproduces a run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector", "FAULT_KINDS"]

#: Supported fault-event kinds.
FAULT_KINDS = ("node_crash", "node_recover", "disk_slowdown", "link_loss")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (or repair) on the simulated cluster."""

    #: Absolute simulated time at which the event takes effect.
    time: float
    #: One of :data:`FAULT_KINDS`.
    kind: str
    #: Target node id.
    node: int
    #: Local disk index (``disk_slowdown`` only).
    disk: int = 0
    #: Service-time multiplier (``disk_slowdown`` only; 1.0 = healthy).
    factor: float = 1.0
    #: Per-message drop probability (``link_loss`` only; 0.0 = healthy).
    loss_prob: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if self.factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {self.factor}")
        if not 0.0 <= self.loss_prob <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {self.loss_prob}")


@dataclass
class FaultPlan:
    """A schedule of fault events plus the seed for stochastic message loss.

    Builder methods return ``self`` so plans chain fluently::

        plan = (FaultPlan()
                .node_crash(0.5, node=3)
                .node_recover(2.0, node=3)
                .link_loss(1.0, node=5, loss_prob=0.05))
    """

    events: list = field(default_factory=list)
    #: Seed of the RNG used for per-message loss draws during the run.
    seed: int = 0

    # -- builders ------------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append one event."""
        self.events.append(event)
        return self

    def node_crash(self, time: float, node: int) -> "FaultPlan":
        """Crash ``node`` at ``time``."""
        return self.add(FaultEvent(time, "node_crash", node))

    def node_recover(self, time: float, node: int) -> "FaultPlan":
        """Restart ``node`` at ``time`` (cold cache)."""
        return self.add(FaultEvent(time, "node_recover", node))

    def disk_slowdown(self, time: float, node: int, factor: float, disk: int = 0) -> "FaultPlan":
        """Multiply one local disk's service time by ``factor`` from ``time`` on."""
        return self.add(FaultEvent(time, "disk_slowdown", node, disk=disk, factor=factor))

    def disk_restore(self, time: float, node: int, disk: int = 0) -> "FaultPlan":
        """Restore one local disk to healthy service time."""
        return self.add(FaultEvent(time, "disk_slowdown", node, disk=disk, factor=1.0))

    def link_loss(self, time: float, node: int, loss_prob: float) -> "FaultPlan":
        """Make ``node``'s link drop messages with ``loss_prob`` from ``time`` on."""
        return self.add(FaultEvent(time, "link_loss", node, loss_prob=loss_prob))

    def link_restore(self, time: float, node: int) -> "FaultPlan":
        """Restore ``node``'s link to lossless delivery."""
        return self.add(FaultEvent(time, "link_loss", node, loss_prob=0.0))

    # -- stochastic generation ----------------------------------------------

    @classmethod
    def random_crashes(
        cls,
        n_nodes: int,
        horizon: float,
        mtbf: float,
        mttr: float,
        rng=None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Seeded crash/repair schedule from exponential MTBF/MTTR.

        Each node independently alternates up intervals ~ Exp(``mtbf``) and
        down intervals ~ Exp(``mttr``) over ``[0, horizon]``.  The same
        ``rng`` seed always yields the same plan.

        Parameters
        ----------
        n_nodes:
            Cluster size.
        horizon:
            Length of simulated time to cover.
        mtbf:
            Mean time between failures (seconds of up time).
        mttr:
            Mean time to repair (seconds of down time).
        rng:
            Seed/generator for the schedule itself.
        seed:
            Seed for the run-time message-loss RNG (kept on the plan).
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if mtbf <= 0 or mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")
        rng = as_rng(rng)
        plan = cls(seed=seed)
        for node in range(int(n_nodes)):
            t = float(rng.exponential(mtbf))
            while t < horizon:
                plan.node_crash(t, node)
                t += float(rng.exponential(mttr))
                if t >= horizon:
                    break
                plan.node_recover(t, node)
                t += float(rng.exponential(mtbf))
        return plan

    def sorted_events(self) -> list:
        """Events in chronological order (stable for equal times)."""
        return sorted(self.events, key=lambda e: e.time)

    def validate(self, n_nodes: int, disks_per_node: int = 1) -> None:
        """Check every event targets an existing node/disk."""
        for ev in self.events:
            if not 0 <= ev.node < n_nodes:
                raise ValueError(f"fault targets node {ev.node} outside [0, {n_nodes})")
            if ev.kind == "disk_slowdown" and not 0 <= ev.disk < disks_per_node:
                raise ValueError(
                    f"fault targets local disk {ev.disk} outside [0, {disks_per_node})"
                )


class FaultInjector:
    """Applies a :class:`FaultPlan` to one engine run.

    Created (usually implicitly, by passing a plan to
    :meth:`repro.parallel.ParallelGridFile.run_queries`) per run —
    injectors hold run state and must not be reused across runs.
    """

    def __init__(self, plan: FaultPlan, n_nodes: int, disks_per_node: int = 1):
        plan.validate(n_nodes, disks_per_node)
        self.plan = plan
        self.n_nodes = int(n_nodes)
        self.rng = np.random.default_rng(plan.seed)
        self.loss_prob = [0.0] * self.n_nodes
        self._engine = None
        #: Applied-event counts by kind (observability).
        self.applied = {kind: 0 for kind in FAULT_KINDS}

    def install(self, engine) -> None:
        """Schedule every planned event on the engine's simulator."""
        if self._engine is not None:
            raise RuntimeError("FaultInjector already installed; use one per run")
        self._engine = engine
        for ev in self.plan.sorted_events():
            engine.sim.schedule_at(ev.time, self._apply, ev)

    def _apply(self, ev: FaultEvent) -> None:
        engine = self._engine
        node = engine.nodes[ev.node]
        if ev.kind == "node_crash":
            node.crash(engine.sim.now)
        elif ev.kind == "node_recover":
            node.recover(engine.sim.now)
            engine.node_recovered(ev.node)
        elif ev.kind == "disk_slowdown":
            node.disk_slowdown[ev.disk] = ev.factor
        elif ev.kind == "link_loss":
            self.loss_prob[ev.node] = ev.loss_prob
        self.applied[ev.kind] += 1
        if engine.trace:
            engine.tracer.event(
                f"fault.{ev.kind}",
                engine.sim.now,
                entity=f"node{ev.node}",
                disk=ev.disk,
                factor=ev.factor,
                loss_prob=ev.loss_prob,
            )

    def message_delivered(self, node: int) -> bool:
        """Loss draw for one message on ``node``'s link (True = delivered)."""
        return self._engine.net.delivered(self.rng, self.loss_prob[node])
