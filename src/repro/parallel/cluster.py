"""The simulated shared-nothing cluster: SPMD parallel grid file execution.

Drives the full §3.5 protocol on the discrete-event kernel:

1. the coordinator plans the query (CPU), then sends one block request per
   involved node over its NIC (serialized sends, latency per message);
2. each worker reads its cache-missing blocks from its local disks (parallel
   across disks, scheduled per disk), filters candidates on its CPU, and
   streams the qualified records back over its NIC;
3. the coordinator's ingest link receives replies one at a time — the
   shared bottleneck that makes communication time grow with answer size;
4. a query completes when every reply has been ingested.

Two driving modes:

* **closed** (:meth:`ParallelGridFile.run_queries`) — a fixed number of
  outstanding queries (default 1, the paper's sequential workload); the
  next query starts when one completes.
* **open** (:meth:`ParallelGridFile.run_open`) — queries arrive by a Poisson
  process at a given rate; the admission controller decides when each enters
  (unbounded by default; ``ClusterParams.max_inflight`` / ``deadline``
  switch to bounded admission with deadline shedding).

Reported metrics mirror Tables 4-5: *response time by definition* (blocks,
``max_i N_i(q)`` summed over queries — a pure declustering property),
*communication time* (seconds on the wire) and *elapsed time* (simulated
wall clock), plus latency, cache and utilization detail.

Fault tolerance (mid-run degraded mode)
---------------------------------------

Passing a :class:`repro.parallel.faults.FaultPlan` to either run method
injects node crashes, recoveries, disk slowdowns and message loss *while
queries are in flight*.  The coordinator then runs the robust protocol:
every request carries a timeout; a timed-out request is retried with
exponential backoff up to ``ClusterParams.max_retries`` times; when retries
are exhausted the target node is *suspected* and the request's buckets fail
over to their replica disks (``ClusterParams.replication`` — chained walks
cascade past consecutive dead disks).  Requests of later queries destined to
suspected nodes are rerouted at submit time; a recovery heartbeat clears
suspicion.  A query aborts only when some bucket has no live replica.  With
no faults and no explicit timeout the engine takes the exact legacy path —
``PerfReport`` numbers are bit-for-bit identical to the pre-fault-layer
engine (regression-tested).

Implementation
--------------

The engine itself lives in :mod:`repro.parallel.engine` as an explicit
request pipeline (admission → plan/route → cache probe → replica selection
→ disk service → filter/aggregate → reply) with pluggable scheduling,
replica-selection and admission seams; this module re-exports the public
entry points under their historical home.  See ``docs/architecture.md``
for the stage diagram.
"""

from repro.parallel.engine.params import (
    DEFAULT_REQUEST_TIMEOUT,
    ClusterParams,
    validate_params,
)
from repro.parallel.engine.pipeline import RequestPipeline
from repro.parallel.engine.runners import LoadReport, ParallelGridFile
from repro.parallel.engine.stats import PerfReport

#: Historical alias — the engine class behind both run modes.
_Engine = RequestPipeline

__all__ = [
    "ClusterParams",
    "DEFAULT_REQUEST_TIMEOUT",
    "LoadReport",
    "ParallelGridFile",
    "PerfReport",
    "RequestPipeline",
    "validate_params",
]
