"""The simulated shared-nothing cluster: SPMD parallel grid file execution.

Drives the full §3.5 protocol on the discrete-event kernel:

1. the coordinator plans the query (CPU), then sends one block request per
   involved node over its NIC (serialized sends, latency per message);
2. each worker reads its cache-missing blocks from its local disks (parallel
   across disks, FIFO within), filters candidates on its CPU, and streams
   the qualified records back over its NIC;
3. the coordinator's ingest link receives replies one at a time — the
   shared bottleneck that makes communication time grow with answer size;
4. a query completes when every reply has been ingested.

Two driving modes:

* **closed** (:meth:`ParallelGridFile.run_queries`) — a fixed number of
  outstanding queries (default 1, the paper's sequential workload); the
  next query starts when one completes.
* **open** (:meth:`ParallelGridFile.run_open`) — queries arrive by a Poisson
  process at a given rate and queue naturally at the resources; the latency
  distribution exposes the cluster's saturation throughput.

Reported metrics mirror Tables 4-5: *response time by definition* (blocks,
``max_i N_i(q)`` summed over queries — a pure declustering property),
*communication time* (seconds on the wire) and *elapsed time* (simulated
wall clock), plus latency, cache and utilization detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng
from repro.parallel.coordinator import Coordinator, QueryPlan
from repro.parallel.des import Resource, Simulator
from repro.parallel.disk import DiskModel
from repro.parallel.message import BlockRequest
from repro.parallel.network import NetworkModel
from repro.parallel.node import WorkerNode

__all__ = ["ClusterParams", "PerfReport", "ParallelGridFile", "LoadReport"]


@dataclass(frozen=True)
class ClusterParams:
    """Cost-model knobs of the simulated cluster (SP-2-era defaults)."""

    disk: DiskModel = field(default_factory=DiskModel)
    network: NetworkModel = field(default_factory=NetworkModel)
    #: LRU cache capacity per node, in blocks (0 disables caching).
    cache_blocks: int = 512
    #: Disks per node (paper: 1; its future-work configuration: 7).
    disks_per_node: int = 1
    #: CPU time to filter one candidate record (seconds).
    cpu_filter_per_record: float = 2e-6
    #: Bytes per record on the wire.
    record_bytes: int = 40
    #: Fixed bytes per request/reply message.
    header_bytes: int = 64
    #: Bytes per bucket id in a request message.
    bucket_id_bytes: int = 8
    #: Coordinator directory-lookup CPU time per query.
    lookup_time: float = 0.2e-3
    #: Coordinator planning CPU time per touched bucket.
    plan_time_per_bucket: float = 2e-6
    #: Outstanding queries in closed mode (1 = the paper's workload).
    pipeline_depth: int = 1


@dataclass
class PerfReport:
    """Results of a cluster run (the Tables 4-5 columns, plus detail)."""

    n_queries: int
    n_nodes: int
    n_disks: int
    #: Sum over queries of ``max_i N_i(q)`` — "response time by definition".
    blocks_fetched: int
    #: Total blocks requested from workers (sum over disks, not max).
    blocks_requested_total: int
    #: Blocks actually read from disk (cache misses).
    blocks_read: int
    #: Seconds of NIC transfer time (requests + replies) including latency.
    comm_time: float
    #: Simulated wall-clock seconds to complete the workload.
    elapsed_time: float
    #: Total qualified records returned.
    records_returned: int
    #: Aggregate worker cache hit rate.
    cache_hit_rate: float
    #: Per-query completion times (simulated clock).
    completion_times: np.ndarray
    #: Per-query latencies (completion - submission).
    latencies: np.ndarray
    #: Per-node busy fractions of the disk resources.
    disk_utilization: np.ndarray

    @property
    def mean_latency(self) -> float:
        """Mean per-query latency (seconds)."""
        return float(self.latencies.mean()) if self.latencies.size else 0.0

    @property
    def p95_latency(self) -> float:
        """95th-percentile per-query latency (seconds)."""
        return float(np.percentile(self.latencies, 95)) if self.latencies.size else 0.0

    @property
    def throughput(self) -> float:
        """Completed queries per simulated second."""
        return self.n_queries / self.elapsed_time if self.elapsed_time > 0 else 0.0

    def row(self) -> tuple:
        """The (blocks, comm seconds, elapsed seconds) row of Tables 4-5."""
        return (self.blocks_fetched, self.comm_time, self.elapsed_time)


class _Engine:
    """One simulation run: resources, protocol callbacks, statistics."""

    def __init__(self, owner: "ParallelGridFile", queries):
        self.owner = owner
        self.params = owner.params
        self.net = owner.params.network
        self.sim = Simulator()
        self.queries = list(queries)
        self.plans: list[QueryPlan] = [
            owner.coordinator.plan(i, q) for i, q in enumerate(self.queries)
        ]
        self.nodes = [
            WorkerNode.create(
                i,
                self.params.disk,
                self.params.cache_blocks,
                disks_per_node=self.params.disks_per_node,
                cpu_filter_per_record=self.params.cpu_filter_per_record,
            )
            for i in range(owner.n_nodes)
        ]
        self.coord_cpu = Resource("coord.cpu")
        self.coord_nic = Resource("coord.nic")
        self.coord_ingest = Resource("coord.ingest")
        self.comm_time = 0.0
        self.remaining: dict[int, int] = {}
        self.submit_time = np.zeros(len(self.queries))
        self.completion = np.zeros(len(self.queries))
        self.on_complete = None  # optional hook(qid)

    # -- protocol steps ------------------------------------------------------

    def submit(self, qid: int) -> None:
        """Start query ``qid`` at the current simulated time."""
        self.submit_time[qid] = self.sim.now
        plan = self.plans[qid]
        _, lookup_end = self.coord_cpu.reserve(
            self.sim.now, self.owner.coordinator.plan_cpu_time(plan)
        )
        if not plan.requests:
            self.sim.schedule_at(lookup_end, self._complete, qid)
            return
        self.remaining[qid] = len(plan.requests)
        for req in plan.requests:
            req_bytes = (
                self.params.header_bytes + self.params.bucket_id_bytes * req.n_blocks
            )
            t = self.net.transfer_time(req_bytes)
            _, send_end = self.coord_nic.reserve(lookup_end, t)
            self.comm_time += t + self.net.latency
            self.sim.schedule_at(send_end + self.net.latency, self._worker_receive, qid, req)

    def _worker_receive(self, qid: int, req: BlockRequest) -> None:
        plan = self.plans[qid]
        node = self.nodes[req.node_id]
        ready, reply = node.serve(
            self.sim.now,
            req,
            self.owner.coordinator.local_disk_of_bucket,
            candidates=plan.candidates_per_node[req.node_id],
            qualified=plan.qualified_per_node[req.node_id],
        )
        reply_bytes = (
            self.params.header_bytes + self.params.record_bytes * reply.n_qualified
        )
        t = self.net.transfer_time(reply_bytes)
        _, send_end = node.nic.reserve(ready, t)
        self.comm_time += t + self.net.latency
        self.sim.schedule_at(
            send_end + self.net.latency, self._coordinator_receive, qid, reply_bytes
        )

    def _coordinator_receive(self, qid: int, reply_bytes: float) -> None:
        _, ingest_end = self.coord_ingest.reserve(
            self.sim.now, self.net.transfer_time(reply_bytes)
        )
        self.sim.schedule_at(ingest_end, self._reply_done, qid)

    def _reply_done(self, qid: int) -> None:
        self.remaining[qid] -= 1
        if self.remaining[qid] == 0:
            del self.remaining[qid]
            self._complete(qid)

    def _complete(self, qid: int) -> None:
        self.completion[qid] = self.sim.now
        if self.on_complete is not None:
            self.on_complete(qid)

    # -- reporting -----------------------------------------------------------

    def report(self) -> PerfReport:
        total_hits = sum(n.cache.hits for n in self.nodes)
        total_access = sum(n.cache.hits + n.cache.misses for n in self.nodes)
        elapsed = float(self.completion.max()) if self.queries else 0.0
        disk_util = np.array(
            [
                sum(d.busy_time for d in n.disks) / (elapsed * len(n.disks))
                if elapsed > 0
                else 0.0
                for n in self.nodes
            ]
        )
        return PerfReport(
            n_queries=len(self.queries),
            n_nodes=self.owner.n_nodes,
            n_disks=self.owner.n_disks,
            blocks_fetched=sum(p.response_by_definition for p in self.plans),
            blocks_requested_total=sum(n.blocks_requested for n in self.nodes),
            blocks_read=sum(n.blocks_read for n in self.nodes),
            comm_time=self.comm_time,
            elapsed_time=elapsed,
            records_returned=sum(p.total_qualified for p in self.plans),
            cache_hit_rate=(total_hits / total_access) if total_access else 0.0,
            completion_times=self.completion,
            latencies=self.completion - self.submit_time,
            disk_utilization=disk_util,
        )


class ParallelGridFile:
    """A declustered page store deployed on the simulated cluster.

    Despite the historical name, any storage structure works: pass a
    :class:`~repro.gridfile.GridFile`, an :class:`~repro.rtree.RTree`, or
    any :class:`~repro.parallel.stores.PageStore` — the coordinator plans
    against the store interface (page = disk block).

    Parameters
    ----------
    store:
        The declustered storage structure.
    assignment:
        ``(n_pages,)`` disk ids (from any
        :class:`repro.core.DeclusteringMethod` or leaf-assignment helper).
    n_disks:
        Total disks; must be a multiple of ``params.disks_per_node``.
    params:
        Cost-model parameters.
    """

    def __init__(
        self,
        store,
        assignment: np.ndarray,
        n_disks: int,
        params: "ClusterParams | None" = None,
    ):
        self.params = params or ClusterParams()
        self.coordinator = Coordinator(
            store,
            assignment,
            n_disks,
            disks_per_node=self.params.disks_per_node,
            lookup_time=self.params.lookup_time,
            plan_time_per_bucket=self.params.plan_time_per_bucket,
        )
        self.store = self.coordinator.store
        self.n_disks = int(n_disks)
        self.n_nodes = self.coordinator.n_nodes

    def run_queries(self, queries) -> PerfReport:
        """Closed-system run: at most ``pipeline_depth`` outstanding queries."""
        engine = _Engine(self, queries)
        n = len(engine.queries)
        state = {"next": 0}

        def submit_next(_qid=None):
            if state["next"] < n:
                qid = state["next"]
                state["next"] += 1
                engine.submit(qid)

        engine.on_complete = submit_next
        for _ in range(max(1, self.params.pipeline_depth)):
            submit_next()
        engine.sim.run()
        return engine.report()

    def run_open(self, queries, arrival_rate: float, rng=None) -> PerfReport:
        """Open-system run: Poisson arrivals at ``arrival_rate`` queries/s.

        Queries enter the system at their arrival instants regardless of how
        many are in flight; queueing happens at the coordinator CPU/NIC and
        the worker disks.  Latency percentiles reveal the saturation point
        (``benchmarks/bench_ext_open_system.py``).

        Parameters
        ----------
        queries:
            The workload.
        arrival_rate:
            Mean arrivals per simulated second (> 0).
        rng:
            Seed/generator for the exponential inter-arrival times.
        """
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
        rng = as_rng(rng)
        engine = _Engine(self, queries)
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=len(engine.queries)))
        for qid, t in enumerate(arrivals):
            engine.sim.schedule_at(float(t), engine.submit, qid)
        engine.sim.run()
        return engine.report()

    def simulate_load(
        self, cpu_build_per_record: float = 5e-6, parallel_input: bool = False
    ) -> "LoadReport":
        """Simulate the initial declustered load (paper §3.5's 3M-record step).

        The coordinator builds the structure (CPU per record), then ships
        every non-empty page to its owning node.  With the default
        ``parallel_input=False`` all pages flow through the coordinator's
        NIC before being written by the receiving node's disk; node disks
        work in parallel, so load time scales with nodes until the
        serialized coordinator NIC saturates (around ``disk_write /
        transfer_time`` ≈ 50 nodes with the default constants).
        ``parallel_input=True`` models pre-partitioned input (each node
        ingests its own share directly), which removes that ceiling.
        """
        if cpu_build_per_record < 0:
            raise ValueError("cpu_build_per_record must be non-negative")
        return _simulate_load(self, cpu_build_per_record, parallel_input)


@dataclass
class LoadReport:
    """Results of simulating the initial declustered load (paper §3.5)."""

    n_pages: int
    n_nodes: int
    #: Simulated seconds to build + distribute the file.
    elapsed_time: float
    #: Coordinator CPU seconds spent building the structure.
    build_time: float
    #: Bytes shipped to each node.
    bytes_per_node: np.ndarray

    @property
    def imbalance(self) -> float:
        """max/mean bytes per node (1.0 = perfectly even load)."""
        mean = self.bytes_per_node.mean()
        return float(self.bytes_per_node.max() / mean) if mean > 0 else 1.0


def _simulate_load(pgf: "ParallelGridFile", cpu_build_per_record: float, parallel_input: bool) -> LoadReport:
    params = pgf.params
    net = params.network
    store = pgf.store
    n_records = sum(
        store.page_records(p).size for p in range(store.n_pages)
    )
    build = cpu_build_per_record * n_records

    page_bytes = params.disk.block_bytes
    node_of = pgf.coordinator.node_of_bucket
    bytes_per_node = np.zeros(pgf.n_nodes)
    disk_write = [Resource(f"load.node{i}.disk") for i in range(pgf.n_nodes)]
    coord_nic = Resource("load.coord.nic")
    finish = build
    for page in range(store.n_pages):
        if store.page_records(page).size == 0:
            continue  # empty pages occupy no disk block
        node = node_of(page)
        bytes_per_node[node] += page_bytes
        t = net.transfer_time(page_bytes)
        if parallel_input:
            # Each node ingests its own partition of the input directly:
            # transfers overlap across nodes, serialized per node NIC=disk.
            _, arrive = disk_write[node].reserve(build, t + net.latency)
        else:
            # All data flows through the coordinator's NIC first.
            _, sent = coord_nic.reserve(build, t)
            _, arrive = disk_write[node].reserve(
                sent + net.latency, params.disk.service_time(1)
            )
        finish = max(finish, arrive)
    return LoadReport(
        n_pages=store.n_pages,
        n_nodes=pgf.n_nodes,
        elapsed_time=finish,
        build_time=build,
        bytes_per_node=bytes_per_node,
    )
