"""The simulated shared-nothing cluster: SPMD parallel grid file execution.

Drives the full §3.5 protocol on the discrete-event kernel:

1. the coordinator plans the query (CPU), then sends one block request per
   involved node over its NIC (serialized sends, latency per message);
2. each worker reads its cache-missing blocks from its local disks (parallel
   across disks, FIFO within), filters candidates on its CPU, and streams
   the qualified records back over its NIC;
3. the coordinator's ingest link receives replies one at a time — the
   shared bottleneck that makes communication time grow with answer size;
4. a query completes when every reply has been ingested.

Two driving modes:

* **closed** (:meth:`ParallelGridFile.run_queries`) — a fixed number of
  outstanding queries (default 1, the paper's sequential workload); the
  next query starts when one completes.
* **open** (:meth:`ParallelGridFile.run_open`) — queries arrive by a Poisson
  process at a given rate and queue naturally at the resources; the latency
  distribution exposes the cluster's saturation throughput.

Reported metrics mirror Tables 4-5: *response time by definition* (blocks,
``max_i N_i(q)`` summed over queries — a pure declustering property),
*communication time* (seconds on the wire) and *elapsed time* (simulated
wall clock), plus latency, cache and utilization detail.

Fault tolerance (mid-run degraded mode)
---------------------------------------

Passing a :class:`repro.parallel.faults.FaultPlan` to either run method
injects node crashes, recoveries, disk slowdowns and message loss *while
queries are in flight*.  The coordinator then runs the robust protocol:
every request carries a timeout; a timed-out request is retried with
exponential backoff up to ``ClusterParams.max_retries`` times; when retries
are exhausted the target node is *suspected* and the request's buckets fail
over to their replica disks (``ClusterParams.replication`` — chained walks
cascade past consecutive dead disks).  Requests of later queries destined to
suspected nodes are rerouted at submit time; a recovery heartbeat clears
suspicion.  A query aborts only when some bucket has no live replica.  With
no faults and no explicit timeout the engine takes the exact legacy path —
``PerfReport`` numbers are bit-for-bit identical to the pre-fault-layer
engine (regression-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng
from repro.obs import PROFILER, MetricsRegistry, default_tracer
from repro.parallel.coordinator import Coordinator, QueryPlan
from repro.parallel.des import Resource, Simulator
from repro.parallel.disk import DiskModel
from repro.parallel.message import BlockRequest
from repro.parallel.network import NetworkModel
from repro.parallel.node import WorkerNode
from repro.parallel.replication import replica_assignment

__all__ = ["ClusterParams", "PerfReport", "ParallelGridFile", "LoadReport"]


@dataclass(frozen=True)
class ClusterParams:
    """Cost-model knobs of the simulated cluster (SP-2-era defaults)."""

    disk: DiskModel = field(default_factory=DiskModel)
    network: NetworkModel = field(default_factory=NetworkModel)
    #: LRU cache capacity per node, in blocks (0 disables caching).
    cache_blocks: int = 512
    #: Disks per node (paper: 1; its future-work configuration: 7).
    disks_per_node: int = 1
    #: CPU time to filter one candidate record (seconds).
    cpu_filter_per_record: float = 2e-6
    #: Bytes per record on the wire.
    record_bytes: int = 40
    #: Fixed bytes per request/reply message.
    header_bytes: int = 64
    #: Bytes per bucket id in a request message.
    bucket_id_bytes: int = 8
    #: Coordinator directory-lookup CPU time per query.
    lookup_time: float = 0.2e-3
    #: Coordinator planning CPU time per touched bucket.
    plan_time_per_bucket: float = 2e-6
    #: Outstanding queries in closed mode (1 = the paper's workload).
    pipeline_depth: int = 1
    #: Replication scheme for dynamic failover ("chained"/"mirrored";
    #: None disables failover — timed-out requests abort after retries).
    replication: "str | None" = None
    #: Per-request timeout *slack* in seconds, added on top of the healthy
    #: service-time estimate for the request's size (so large requests get
    #: proportionally later deadlines).  None = disabled on fault-free runs,
    #: auto (DEFAULT_REQUEST_TIMEOUT) when faults are injected; set
    #: explicitly to force timeouts on.
    request_timeout: "float | None" = None
    #: Retransmissions to the same node before suspecting it.
    max_retries: int = 1
    #: Base backoff before a retry (doubles per attempt).
    retry_backoff: float = 0.02
    #: Delay until a recovered node's heartbeat clears coordinator suspicion.
    heartbeat_delay: float = 0.05


@dataclass
class PerfReport:
    """Results of a cluster run (the Tables 4-5 columns, plus detail)."""

    n_queries: int
    n_nodes: int
    n_disks: int
    #: Sum over queries of ``max_i N_i(q)`` — "response time by definition".
    blocks_fetched: int
    #: Total blocks requested from workers (sum over disks, not max).
    blocks_requested_total: int
    #: Blocks actually read from disk (cache misses).
    blocks_read: int
    #: Seconds of NIC transfer time (requests + replies) including latency.
    comm_time: float
    #: Simulated wall-clock seconds to complete the workload.
    elapsed_time: float
    #: Total qualified records returned.
    records_returned: int
    #: Aggregate worker cache hit rate.
    cache_hit_rate: float
    #: Per-query completion times (simulated clock).
    completion_times: np.ndarray
    #: Per-query latencies (completion - submission).
    latencies: np.ndarray
    #: Per-node busy fractions of the disk resources (over alive windows).
    disk_utilization: np.ndarray
    #: Coordinator request timeouts observed.
    timeouts: int = 0
    #: Retransmissions to the same node after a timeout.
    retries: int = 0
    #: Requests rerouted to replica disks (suspected/crashed targets).
    failovers: int = 0
    #: Messages dropped by fault-injected lossy links.
    messages_lost: int = 0
    #: Queries aborted because some bucket had no live replica.
    aborted_queries: int = 0
    #: :class:`repro.obs.MetricsRegistry` snapshot of the run (counters,
    #: queue-depth / service-time / latency histograms); deterministic.
    metrics: "dict | None" = None

    @property
    def availability(self) -> float:
        """Fraction of queries answered (1.0 = nothing aborted)."""
        return 1.0 - self.aborted_queries / self.n_queries if self.n_queries else 1.0

    @property
    def mean_latency(self) -> float:
        """Mean per-query latency (seconds)."""
        return float(self.latencies.mean()) if self.latencies.size else 0.0

    @property
    def p95_latency(self) -> float:
        """95th-percentile per-query latency (seconds)."""
        return float(np.percentile(self.latencies, 95)) if self.latencies.size else 0.0

    @property
    def throughput(self) -> float:
        """Completed queries per simulated second."""
        return self.n_queries / self.elapsed_time if self.elapsed_time > 0 else 0.0

    def row(self) -> tuple:
        """The (blocks, comm seconds, elapsed seconds) row of Tables 4-5."""
        return (self.blocks_fetched, self.comm_time, self.elapsed_time)


#: Request timeout slack used when faults are injected but none was configured.
DEFAULT_REQUEST_TIMEOUT = 0.05

#: Queue-depth histogram bucket bounds (outstanding queries at submit).
_QUEUE_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128)


class _RequestState:
    """Coordinator-side bookkeeping for one in-flight block request."""

    __slots__ = ("qid", "req", "timeout_ev", "done", "trace_id")

    def __init__(self, qid: int, req: BlockRequest):
        self.qid = qid
        self.req = req
        self.timeout_ev = None
        self.done = False
        self.trace_id = None


class _Engine:
    """One simulation run: resources, protocol callbacks, statistics.

    Observability (all bit-for-bit neutral when disabled): ``tracer``
    (default: the ``REPRO_TRACE`` env tracer, usually the disabled
    :data:`repro.obs.NULL_TRACER`) receives structured protocol events —
    query spans, request/reply/timeout/retry/failover events with cause
    links, fault applications — and ``self.metrics`` accumulates the run's
    counters and histograms, snapshotted into ``PerfReport.metrics``.
    """

    #: Subclasses (the online engine) set this False to plan each query at
    #: submit time against the live store instead of eagerly up front.
    eager_plan = True

    def __init__(self, owner: "ParallelGridFile", queries, faults=None, tracer=None):
        self.owner = owner
        self.params = owner.params
        self.net = owner.params.network
        self.tracer = tracer if tracer is not None else default_tracer()
        self.trace = self.tracer.enabled
        self.metrics = MetricsRegistry()
        self.sim = Simulator(tracer=self.tracer if self.trace else None)
        self.queries = list(queries)
        if self.eager_plan:
            with PROFILER.phase("cluster.plan"):
                self.plans: list[QueryPlan] = [
                    owner.coordinator.plan(i, q) for i, q in enumerate(self.queries)
                ]
        else:
            self.plans = [None] * len(self.queries)
        self.nodes = [
            WorkerNode.create(
                i,
                self.params.disk,
                self.params.cache_blocks,
                disks_per_node=self.params.disks_per_node,
                cpu_filter_per_record=self.params.cpu_filter_per_record,
            )
            for i in range(owner.n_nodes)
        ]
        self.coord_cpu = Resource("coord.cpu")
        self.coord_nic = Resource("coord.nic")
        self.coord_ingest = Resource("coord.ingest")
        self.comm_time = 0.0
        self.remaining: dict[int, int] = {}
        self.submit_time = np.zeros(len(self.queries))
        self.completion = np.zeros(len(self.queries))
        self.on_complete = None  # optional hook(qid)

        # -- fault-tolerance state ------------------------------------------
        self.injector = None
        if faults is not None:
            from repro.parallel.faults import FaultInjector, FaultPlan

            if isinstance(faults, FaultPlan):
                faults = FaultInjector(
                    faults, owner.n_nodes, disks_per_node=self.params.disks_per_node
                )
            self.injector = faults
            self.injector.install(self)
        self.timeout = self.params.request_timeout
        if self.timeout is None and self.injector is not None:
            self.timeout = DEFAULT_REQUEST_TIMEOUT
        #: Nodes the coordinator currently believes down (timeout-detected).
        self.suspected: set[int] = set()
        self.aborted: set[int] = set()
        self._states_by_qid: dict[int, list[_RequestState]] = {}
        self.n_timeouts = 0
        self.n_retries = 0
        self.n_failovers = 0
        self.n_messages_lost = 0
        self._qspan: dict[int, int] = {}
        if self.trace:
            self.tracer.event(
                "run.start",
                self.sim.now,
                entity="run",
                n_queries=len(self.queries),
                n_nodes=owner.n_nodes,
                n_disks=owner.n_disks,
                faulted=self.injector is not None,
            )

    # -- protocol steps ------------------------------------------------------

    def _plan_of(self, qid: int) -> QueryPlan:
        """The plan of query ``qid``; computed on first use when lazy."""
        plan = self.plans[qid]
        if plan is None:
            plan = self.plans[qid] = self.owner.coordinator.plan(
                qid, self.queries[qid]
            )
        return plan

    def submit(self, qid: int) -> None:
        """Start query ``qid`` at the current simulated time."""
        self.submit_time[qid] = self.sim.now
        plan = self._plan_of(qid)
        self.metrics.counter("queries.submitted").inc()
        self.metrics.histogram("queue.depth", bounds=_QUEUE_BOUNDS).observe(
            len(self.remaining)
        )
        if self.trace:
            self._qspan[qid] = self.tracer.span_open(
                "query",
                self.sim.now,
                entity=f"query{qid}",
                qid=qid,
                n_requests=len(plan.requests),
            )
        _, lookup_end = self.coord_cpu.reserve(
            self.sim.now, self.owner.coordinator.plan_cpu_time(plan)
        )
        if not plan.requests:
            self.sim.schedule_at(lookup_end, self._complete, qid)
            return
        requests = plan.requests
        if self.suspected:
            requests = self._reroute_suspected(plan, requests)
            if requests is None:
                self.sim.schedule_at(lookup_end, self._abort, qid)
                return
        self.remaining[qid] = len(requests)
        for req in requests:
            self._send_request(_RequestState(qid, req), lookup_end)

    def _send_request(self, state: _RequestState, earliest: float) -> None:
        """Transmit one block request, arming its timeout if enabled."""
        req = state.req
        req_bytes = (
            self.params.header_bytes + self.params.bucket_id_bytes * req.n_blocks
        )
        t = self.net.transfer_time(req_bytes)
        _, send_end = self.coord_nic.reserve(earliest, t)
        self.comm_time += t + self.net.latency
        arrive = send_end + self.net.latency
        self.metrics.counter("requests.sent").inc()
        if self.trace:
            # Effective global disk per requested block (failover reads carry
            # explicit targets); lets traces reconstruct per-disk access
            # counts exactly (tests/test_obs_differential.py).
            disks = (
                req.target_disks
                if req.target_disks is not None
                else self.owner.coordinator.assignment[req.bucket_ids]
            )
            state.trace_id = self.tracer.event(
                "request.send",
                self.sim.now,
                entity="coord",
                cause=self._qspan.get(state.qid),
                qid=state.qid,
                node=req.node_id,
                attempt=req.attempt,
                n_blocks=req.n_blocks,
                disks=disks,
                send_end=send_end,
                arrive=arrive,
            )
        self.sim.schedule_at(arrive, self._worker_receive, state)
        if self.timeout is not None:
            self._states_by_qid.setdefault(state.qid, []).append(state)
            state.timeout_ev = self.sim.schedule_at(
                arrive + self.timeout + self._service_estimate(req),
                self._request_timeout,
                state,
            )

    def _worker_receive(self, state: _RequestState) -> None:
        req = state.req
        node = self.nodes[req.node_id]
        entity = f"node{req.node_id}"
        if self.injector is not None:
            if not node.alive:
                # Dropped on the floor; the timeout recovers it.
                if self.trace:
                    self.tracer.event(
                        "request.drop",
                        self.sim.now,
                        entity=entity,
                        cause=state.trace_id,
                        reason="node_down",
                    )
                return
            if not self.injector.message_delivered(req.node_id):
                self.n_messages_lost += 1
                if self.trace:
                    self.tracer.event(
                        "message.drop",
                        self.sim.now,
                        entity=entity,
                        cause=state.trace_id,
                        direction="request",
                    )
                return
        arrive_id = None
        if self.trace:
            arrive_id = self.tracer.event(
                "request.arrive",
                self.sim.now,
                entity=entity,
                cause=state.trace_id,
                qid=state.qid,
                n_blocks=req.n_blocks,
            )
        ready, reply = node.serve(
            self.sim.now,
            req,
            self._disk_lookup(req),
            candidates=req.candidates,
            qualified=req.qualified,
            tracer=self.tracer if self.trace else None,
            cause=arrive_id,
            metrics=self.metrics,
        )
        reply_bytes = (
            self.params.header_bytes + self.params.record_bytes * reply.n_qualified
        )
        t = self.net.transfer_time(reply_bytes)
        _, send_end = node.nic.reserve(ready, t)
        self.comm_time += t + self.net.latency
        reply_id = None
        if self.trace:
            reply_id = self.tracer.event(
                "reply.send",
                self.sim.now,
                entity=entity,
                cause=arrive_id,
                qid=state.qid,
                ready=ready,
                send_end=send_end,
                n_qualified=reply.n_qualified,
                n_cache_misses=reply.n_cache_misses,
                reply_bytes=reply_bytes,
            )
        self.sim.schedule_at(
            send_end + self.net.latency,
            self._coordinator_receive,
            state,
            reply_bytes,
            reply_id,
        )

    def _service_estimate(self, req: BlockRequest) -> float:
        """Healthy-case service time for a request (deadline scaling).

        A cold read of every block plus the CPU filter pass and the reply
        transfer: large requests get proportionally later deadlines, so the
        timeout slack (``request_timeout``) measures *anomaly*, not size.
        """
        reply_bytes = self.params.header_bytes + self.params.record_bytes * req.qualified
        return (
            self.params.disk.service_time(req.n_blocks)
            + self.params.cpu_filter_per_record * req.candidates
            + self.net.transfer_time(reply_bytes)
            + self.net.latency
        )

    def _disk_lookup(self, req: BlockRequest):
        """Bucket -> local disk mapping (replica-aware for failover reads)."""
        if req.target_disks is None:
            return self.owner.coordinator.local_disk_of_bucket
        dpn = self.params.disks_per_node
        local = {
            int(b): int(d) % dpn for b, d in zip(req.bucket_ids, req.target_disks)
        }
        return local.__getitem__

    def _coordinator_receive(
        self, state: _RequestState, reply_bytes: float, cause=None
    ) -> None:
        if state.done:
            # Duplicate/late reply: the request was already resolved.
            if self.trace:
                self.tracer.event(
                    "reply.stale", self.sim.now, entity="coord", cause=cause
                )
            return
        if self.injector is not None and not self.injector.message_delivered(
            state.req.node_id
        ):
            self.n_messages_lost += 1
            if self.trace:
                self.tracer.event(
                    "message.drop",
                    self.sim.now,
                    entity="coord",
                    cause=cause,
                    direction="reply",
                )
            return
        state.done = True
        if state.timeout_ev is not None:
            state.timeout_ev.cancel()
        if state.qid in self.aborted:
            return
        _, ingest_end = self.coord_ingest.reserve(
            self.sim.now, self.net.transfer_time(reply_bytes)
        )
        if self.trace:
            self.tracer.event(
                "reply.ingest",
                self.sim.now,
                entity="coord",
                cause=cause,
                qid=state.qid,
                ingest_end=ingest_end,
            )
        self.sim.schedule_at(ingest_end, self._reply_done, state.qid)

    def _reply_done(self, qid: int) -> None:
        if qid not in self.remaining:
            return  # aborted while this reply was being ingested
        self.remaining[qid] -= 1
        if self.remaining[qid] == 0:
            del self.remaining[qid]
            self._complete(qid)

    def _complete(self, qid: int) -> None:
        self.completion[qid] = self.sim.now
        self.metrics.counter("queries.completed").inc()
        self.metrics.histogram("query.latency").observe(
            self.sim.now - self.submit_time[qid]
        )
        if self.trace:
            span = self._qspan.pop(qid, None)
            if span is not None:
                self.tracer.span_close(span, self.sim.now, aborted=qid in self.aborted)
        if self.on_complete is not None:
            self.on_complete(qid)

    # -- failure handling ----------------------------------------------------

    def node_recovered(self, node_id: int) -> None:
        """Called by the injector on recovery: heartbeat clears suspicion."""
        self.sim.schedule(
            self.params.heartbeat_delay, self.suspected.discard, node_id
        )

    def _suspected_disks(self) -> set:
        disks = set()
        for n in self.suspected:
            disks.update(self.owner.coordinator.disks_of_node(n))
        return disks

    def _reroute_suspected(self, plan: QueryPlan, requests):
        """Replica-aware planning: reroute requests aimed at suspected nodes."""
        out = []
        failed = self._suspected_disks()
        for req in requests:
            if req.node_id not in self.suspected:
                out.append(req)
                continue
            if self.params.replication is None:
                return None
            rerouted = self.owner.coordinator.failover_requests(
                plan, req, failed, self.params.replication
            )
            if rerouted is None:
                return None
            self.n_failovers += 1
            out.extend(rerouted)
        return out

    def _request_timeout(self, state: _RequestState) -> None:
        if state.done:
            return
        self.n_timeouts += 1
        state.done = True
        req = state.req
        timeout_id = None
        if self.trace:
            timeout_id = self.tracer.event(
                "request.timeout",
                self.sim.now,
                entity="coord",
                cause=state.trace_id,
                qid=state.qid,
                node=req.node_id,
                attempt=req.attempt,
            )
        if req.node_id not in self.suspected and req.attempt < self.params.max_retries:
            # Retry the same node with exponential backoff.
            self.n_retries += 1
            delay = self.params.retry_backoff * (2.0**req.attempt)
            if self.trace:
                self.tracer.event(
                    "request.retry",
                    self.sim.now,
                    entity="coord",
                    cause=timeout_id,
                    qid=state.qid,
                    node=req.node_id,
                    attempt=req.attempt + 1,
                    delay=delay,
                )
            self._send_request(
                _RequestState(state.qid, req.retry()), self.sim.now + delay
            )
            return
        # Retries exhausted (or the node is already suspected): declare the
        # node down and fail the request over to its replica disks.
        if self.trace and req.node_id not in self.suspected:
            self.tracer.event(
                "node.suspect",
                self.sim.now,
                entity="coord",
                cause=timeout_id,
                node=req.node_id,
            )
        self.suspected.add(req.node_id)
        self._failover(state)

    def _failover(self, state: _RequestState) -> None:
        qid = state.qid
        if qid in self.aborted:
            return
        plan = self.plans[qid]
        new_reqs = None
        if self.params.replication is not None:
            new_reqs = self.owner.coordinator.failover_requests(
                plan, state.req, self._suspected_disks(), self.params.replication
            )
        if new_reqs is None:
            self._abort(qid)
            return
        self.n_failovers += 1
        if self.trace:
            self.tracer.event(
                "request.failover",
                self.sim.now,
                entity="coord",
                cause=state.trace_id,
                qid=qid,
                node=state.req.node_id,
                n_requests=len(new_reqs),
            )
        # Re-planning the replica route costs coordinator CPU.
        _, replan_end = self.coord_cpu.reserve(
            self.sim.now,
            self.owner.coordinator.plan_time_per_bucket * state.req.n_blocks,
        )
        self.remaining[qid] += len(new_reqs) - 1
        for nr in new_reqs:
            self._send_request(_RequestState(qid, nr), replan_end)

    def _abort(self, qid: int) -> None:
        """Give up on a query whose data is unreachable."""
        if qid in self.aborted:
            return
        self.aborted.add(qid)
        if self.trace:
            self.tracer.event(
                "query.abort",
                self.sim.now,
                entity=f"query{qid}",
                cause=self._qspan.get(qid),
                qid=qid,
            )
        for st in self._states_by_qid.get(qid, []):
            st.done = True
            if st.timeout_ev is not None:
                st.timeout_ev.cancel()
        self.remaining.pop(qid, None)
        self._complete(qid)

    # -- reporting -----------------------------------------------------------

    def report(self) -> PerfReport:
        total_hits = sum(n.cache.hits for n in self.nodes)
        total_access = sum(n.cache.hits + n.cache.misses for n in self.nodes)
        elapsed = float(self.completion.max()) if self.queries else 0.0
        # Utilization over each node's *alive* window, so a crashed node's
        # dead time doesn't dilute its busy fraction.
        windows = [n.alive_window(elapsed) for n in self.nodes]
        disk_util = np.array(
            [
                sum(d.busy_time for d in n.disks) / (w * len(n.disks))
                if w > 0
                else 0.0
                for n, w in zip(self.nodes, windows)
            ]
        )
        # Aggregate counters (run totals; the live instruments above cover
        # queue depth, latency and per-disk service time).
        m = self.metrics
        m.counter("blocks.requested").inc(sum(n.blocks_requested for n in self.nodes))
        m.counter("blocks.read").inc(sum(n.blocks_read for n in self.nodes))
        m.counter("cache.hits").inc(total_hits)
        m.counter("cache.misses").inc(total_access - total_hits)
        m.counter("requests.timeout").inc(self.n_timeouts)
        m.counter("requests.retry").inc(self.n_retries)
        m.counter("requests.failover").inc(self.n_failovers)
        m.counter("messages.lost").inc(self.n_messages_lost)
        m.counter("queries.aborted").inc(len(self.aborted))
        if self.injector is not None:
            for kind, count in self.injector.applied.items():
                m.counter(f"faults.applied.{kind}").inc(count)
        snapshot = m.snapshot()
        if self.trace:
            self.tracer.event("run.end", self.sim.now, entity="run", elapsed=elapsed)
            self.tracer.metrics(snapshot)
        return PerfReport(
            n_queries=len(self.queries),
            n_nodes=self.owner.n_nodes,
            n_disks=self.owner.n_disks,
            blocks_fetched=sum(
                p.response_by_definition for p in self.plans if p is not None
            ),
            blocks_requested_total=sum(n.blocks_requested for n in self.nodes),
            blocks_read=sum(n.blocks_read for n in self.nodes),
            comm_time=self.comm_time,
            elapsed_time=elapsed,
            records_returned=sum(
                p.total_qualified for p in self.plans if p is not None
            ),
            cache_hit_rate=(total_hits / total_access) if total_access else 0.0,
            completion_times=self.completion,
            latencies=self.completion - self.submit_time,
            disk_utilization=disk_util,
            timeouts=self.n_timeouts,
            retries=self.n_retries,
            failovers=self.n_failovers,
            messages_lost=self.n_messages_lost,
            aborted_queries=len(self.aborted),
            metrics=snapshot,
        )


class ParallelGridFile:
    """A declustered page store deployed on the simulated cluster.

    Despite the historical name, any storage structure works: pass a
    :class:`~repro.gridfile.GridFile`, an :class:`~repro.rtree.RTree`, or
    any :class:`~repro.parallel.stores.PageStore` — the coordinator plans
    against the store interface (page = disk block).

    Parameters
    ----------
    store:
        The declustered storage structure.
    assignment:
        ``(n_pages,)`` disk ids (from any
        :class:`repro.core.DeclusteringMethod` or leaf-assignment helper).
    n_disks:
        Total disks; must be a multiple of ``params.disks_per_node``.
    params:
        Cost-model parameters.
    """

    def __init__(
        self,
        store,
        assignment: np.ndarray,
        n_disks: int,
        params: "ClusterParams | None" = None,
    ):
        self.params = params or ClusterParams()
        if self.params.replication is not None:
            # Validate eagerly (scheme name, mirrored needs even M).
            replica_assignment(
                np.asarray(assignment, dtype=np.int64), int(n_disks), self.params.replication
            )
        if self.params.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.params.max_retries}")
        if self.params.request_timeout is not None and self.params.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {self.params.request_timeout}"
            )
        self.coordinator = Coordinator(
            store,
            assignment,
            n_disks,
            disks_per_node=self.params.disks_per_node,
            lookup_time=self.params.lookup_time,
            plan_time_per_bucket=self.params.plan_time_per_bucket,
        )
        self.store = self.coordinator.store
        self.n_disks = int(n_disks)
        self.n_nodes = self.coordinator.n_nodes

    def run_queries(self, queries, faults=None, tracer=None) -> PerfReport:
        """Closed-system run: at most ``pipeline_depth`` outstanding queries.

        Parameters
        ----------
        queries:
            The workload.
        faults:
            Optional :class:`repro.parallel.faults.FaultPlan` (or a bound
            :class:`~repro.parallel.faults.FaultInjector`) injecting crashes,
            slowdowns and message loss mid-run; see the module docs for the
            degraded-mode protocol.
        tracer:
            Optional :class:`repro.obs.Tracer` recording the run; with the
            default ``None`` the process-wide tracer applies (enabled only
            when ``REPRO_TRACE`` is set — see ``docs/observability.md``).
        """
        engine = _Engine(self, queries, faults=faults, tracer=tracer)
        n = len(engine.queries)
        state = {"next": 0}

        def submit_next(_qid=None):
            if state["next"] < n:
                qid = state["next"]
                state["next"] += 1
                engine.submit(qid)

        engine.on_complete = submit_next
        for _ in range(max(1, self.params.pipeline_depth)):
            submit_next()
        with PROFILER.phase("cluster.run"):
            engine.sim.run()
        return engine.report()

    def run_open(
        self, queries, arrival_rate: float, rng=None, faults=None, tracer=None
    ) -> PerfReport:
        """Open-system run: Poisson arrivals at ``arrival_rate`` queries/s.

        Queries enter the system at their arrival instants regardless of how
        many are in flight; queueing happens at the coordinator CPU/NIC and
        the worker disks.  Latency percentiles reveal the saturation point
        (``benchmarks/bench_ext_open_system.py``).

        Parameters
        ----------
        queries:
            The workload.
        arrival_rate:
            Mean arrivals per simulated second (> 0).
        rng:
            Seed/generator for the exponential inter-arrival times.
        faults:
            Optional :class:`repro.parallel.faults.FaultPlan` injected
            mid-run (see :meth:`run_queries`).
        tracer:
            Optional :class:`repro.obs.Tracer` (see :meth:`run_queries`).
        """
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
        rng = as_rng(rng)
        engine = _Engine(self, queries, faults=faults, tracer=tracer)
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=len(engine.queries)))
        for qid, t in enumerate(arrivals):
            engine.sim.schedule_at(float(t), engine.submit, qid)
        with PROFILER.phase("cluster.run"):
            engine.sim.run()
        return engine.report()

    def simulate_load(
        self, cpu_build_per_record: float = 5e-6, parallel_input: bool = False
    ) -> "LoadReport":
        """Simulate the initial declustered load (paper §3.5's 3M-record step).

        The coordinator builds the structure (CPU per record), then ships
        every non-empty page to its owning node.  With the default
        ``parallel_input=False`` all pages flow through the coordinator's
        NIC before being written by the receiving node's disk; node disks
        work in parallel, so load time scales with nodes until the
        serialized coordinator NIC saturates (around ``disk_write /
        transfer_time`` ≈ 50 nodes with the default constants).
        ``parallel_input=True`` models pre-partitioned input (each node
        ingests its own share directly), which removes that ceiling.
        """
        if cpu_build_per_record < 0:
            raise ValueError("cpu_build_per_record must be non-negative")
        return _simulate_load(self, cpu_build_per_record, parallel_input)


@dataclass
class LoadReport:
    """Results of simulating the initial declustered load (paper §3.5)."""

    n_pages: int
    n_nodes: int
    #: Simulated seconds to build + distribute the file.
    elapsed_time: float
    #: Coordinator CPU seconds spent building the structure.
    build_time: float
    #: Bytes shipped to each node.
    bytes_per_node: np.ndarray

    @property
    def imbalance(self) -> float:
        """max/mean bytes per node (1.0 = perfectly even load)."""
        mean = self.bytes_per_node.mean()
        return float(self.bytes_per_node.max() / mean) if mean > 0 else 1.0


def _simulate_load(pgf: "ParallelGridFile", cpu_build_per_record: float, parallel_input: bool) -> LoadReport:
    params = pgf.params
    net = params.network
    store = pgf.store
    n_records = sum(
        store.page_records(p).size for p in range(store.n_pages)
    )
    build = cpu_build_per_record * n_records

    page_bytes = params.disk.block_bytes
    node_of = pgf.coordinator.node_of_bucket
    bytes_per_node = np.zeros(pgf.n_nodes)
    disk_write = [Resource(f"load.node{i}.disk") for i in range(pgf.n_nodes)]
    coord_nic = Resource("load.coord.nic")
    finish = build
    for page in range(store.n_pages):
        if store.page_records(page).size == 0:
            continue  # empty pages occupy no disk block
        node = node_of(page)
        bytes_per_node[node] += page_bytes
        t = net.transfer_time(page_bytes)
        if parallel_input:
            # Each node ingests its own partition of the input directly:
            # transfers overlap across nodes, serialized per node NIC=disk.
            _, arrive = disk_write[node].reserve(build, t + net.latency)
        else:
            # All data flows through the coordinator's NIC first.
            _, sent = coord_nic.reserve(build, t)
            _, arrive = disk_write[node].reserve(
                sent + net.latency, params.disk.service_time(1)
            )
        finish = max(finish, arrive)
    return LoadReport(
        n_pages=store.n_pages,
        n_nodes=pgf.n_nodes,
        elapsed_time=finish,
        build_time=build,
        bytes_per_node=bytes_per_node,
    )
