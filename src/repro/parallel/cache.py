"""Per-node LRU buffer cache.

The SP-2 experiments show caching effects: the 59 animation snapshots map
onto only 7 temporal scale partitions, so consecutive time steps re-fetch
the same disk blocks.  Each worker node gets an LRU cache of whole buckets
(one bucket = one disk block in the paper's layout); a hit skips the disk
service time entirely.

The implementation lives in :mod:`repro._util.lru` (it is also used by the
paged-directory model in :mod:`repro.gridfile.paged`); this module re-exports
it under its historical home.
"""

from repro._util.lru import LRUCache

__all__ = ["LRUCache"]
