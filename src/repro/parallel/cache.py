"""Deprecated shim: the per-node LRU cache lives in :mod:`repro._util.lru`."""

from repro._util.lru import LRUCache  # noqa: F401  (historical import path)

__all__ = ["LRUCache"]
