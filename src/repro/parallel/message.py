"""Protocol messages of the SPMD parallel grid file.

The coordinator translates each range query into per-node
:class:`BlockRequest` messages; workers answer with :class:`BlockReply`
carrying the qualified records.  Message *sizes* (which drive the network
cost model) are computed by the cluster from the record width and header
constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockRequest", "BlockReply"]


@dataclass(frozen=True)
class BlockRequest:
    """Coordinator -> worker: fetch these buckets for query ``query_id``.

    The retry metadata (``attempt``, ``target_disks``) is filled in by the
    fault-tolerant engine: ``attempt`` counts prior transmissions of the same
    logical request, and ``target_disks`` — when not ``None`` — carries the
    *effective* per-bucket disk ids after replica failover (aligned with
    ``bucket_ids``; the worker maps them to its local disk indices instead of
    consulting the primary assignment).
    """

    query_id: int
    node_id: int
    bucket_ids: np.ndarray
    #: Candidate (stored) records under the requested buckets.
    candidates: int = 0
    #: Records inside the query box (reply payload size).
    qualified: int = 0
    #: Retransmission count of this logical request (0 = first send).
    attempt: int = 0
    #: Effective per-bucket disk ids after failover (None = primary copies).
    target_disks: "np.ndarray | None" = None

    @property
    def n_blocks(self) -> int:
        """Number of blocks requested."""
        return int(len(self.bucket_ids))

    def retry(self) -> "BlockRequest":
        """Copy of this request with the attempt counter bumped."""
        return BlockRequest(
            query_id=self.query_id,
            node_id=self.node_id,
            bucket_ids=self.bucket_ids,
            candidates=self.candidates,
            qualified=self.qualified,
            attempt=self.attempt + 1,
            target_disks=self.target_disks,
        )


@dataclass(frozen=True)
class BlockReply:
    """Worker -> coordinator: qualified records of one request.

    Only counts travel in the simulation; the actual record payload is
    represented by its size.
    """

    query_id: int
    node_id: int
    n_blocks: int
    n_cache_misses: int
    n_candidates: int
    n_qualified: int
