"""Protocol messages of the SPMD parallel grid file.

The coordinator translates each range query into per-node
:class:`BlockRequest` messages; workers answer with :class:`BlockReply`
carrying the qualified records.  Message *sizes* (which drive the network
cost model) are computed by the cluster from the record width and header
constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockRequest", "BlockReply"]


@dataclass(frozen=True)
class BlockRequest:
    """Coordinator -> worker: fetch these buckets for query ``query_id``."""

    query_id: int
    node_id: int
    bucket_ids: np.ndarray

    @property
    def n_blocks(self) -> int:
        """Number of blocks requested."""
        return int(len(self.bucket_ids))


@dataclass(frozen=True)
class BlockReply:
    """Worker -> coordinator: qualified records of one request.

    Only counts travel in the simulation; the actual record payload is
    represented by its size.
    """

    query_id: int
    node_id: int
    n_blocks: int
    n_cache_misses: int
    n_candidates: int
    n_qualified: int
