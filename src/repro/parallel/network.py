"""Message-passing cost model (SP-2 switch class).

Latency + bandwidth: a message of ``b`` bytes occupies the sender's NIC for
``b / bandwidth`` seconds and arrives ``latency`` seconds after the send
completes.  NICs are serially usable resources, so a worker streaming a
large answer set back delays its next reply, and the coordinator's ingest
link — shared by all workers — becomes the bottleneck that makes
communication time grow with the answer size (paper Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point message timing.

    Parameters
    ----------
    latency:
        One-way message latency in seconds (SP-2 MPL: ~40 µs).
    bandwidth:
        Point-to-point bandwidth in bytes/second (SP-2: ~35 MB/s).
    """

    latency: float = 40e-6
    bandwidth: float = 35e6

    def transfer_time(self, n_bytes: float) -> float:
        """NIC occupancy of a message of ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError(f"negative message size {n_bytes}")
        return n_bytes / self.bandwidth

    def delivered(self, rng, loss_prob: float) -> bool:
        """Whether one message survives a lossy link.

        Draws from ``rng`` only when ``loss_prob > 0``, so healthy links
        consume no randomness and fault-free runs stay bit-for-bit
        reproducible.
        """
        if not 0.0 <= loss_prob <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {loss_prob}")
        if loss_prob == 0.0:
            return True
        return bool(rng.random() >= loss_prob)
