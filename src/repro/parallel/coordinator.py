"""The coordinator: query translation against the storage structure.

The coordinator node stores the access structure's directory (grid-file
scales + directory, or the R-tree's internal levels); for each incoming
query it resolves the touched pages, groups them by owning node, and issues
the block requests.  Its CPU cost model charges a fixed lookup plus a small
per-page planning cost.

Any :class:`repro.parallel.stores.PageStore` works — the coordinator is the
point where the cluster simulator became storage-structure agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import validate_assignment
from repro.gridfile.query import RangeQuery
from repro.parallel.message import BlockRequest
from repro.parallel.replication import effective_disk
from repro.parallel.stores import PageStore, as_page_store

__all__ = ["Coordinator", "QueryPlan"]


@dataclass(frozen=True)
class QueryPlan:
    """The per-node work breakdown of one query."""

    query_id: int
    requests: list[BlockRequest]
    #: Per-disk block counts (the §2.2 response-time ingredients).
    blocks_per_disk: np.ndarray
    #: Candidate (stored) records per node.
    candidates_per_node: dict[int, int]
    #: Qualified records per node.
    qualified_per_node: dict[int, int]
    #: Candidate records per touched bucket (failover re-aggregation).
    candidates_per_bucket: dict[int, int] = None  # type: ignore[assignment]
    #: Qualified records per touched bucket (failover re-aggregation).
    qualified_per_bucket: dict[int, int] = None  # type: ignore[assignment]

    @property
    def response_by_definition(self) -> int:
        """``max_i N_i(q)`` over *disks* — the paper's response time."""
        return int(self.blocks_per_disk.max()) if self.blocks_per_disk.size else 0

    @property
    def total_qualified(self) -> int:
        """Answer-set size of the query."""
        return sum(self.qualified_per_node.values())


class Coordinator:
    """Query planner over a declustered page store.

    Parameters
    ----------
    store:
        A :class:`~repro.parallel.stores.PageStore`, or a ``GridFile`` /
        ``RTree`` (coerced automatically).
    assignment:
        ``(n_pages,)`` *disk* ids.
    n_disks:
        Total number of disks.
    disks_per_node:
        Disks owned by each node; ``node = disk // disks_per_node``.
    lookup_time:
        Fixed directory-lookup CPU cost per query (seconds).
    plan_time_per_bucket:
        Additional CPU cost per touched page.
    """

    def __init__(
        self,
        store,
        assignment: np.ndarray,
        n_disks: int,
        disks_per_node: int = 1,
        lookup_time: float = 0.2e-3,
        plan_time_per_bucket: float = 2e-6,
    ):
        self.store: PageStore = as_page_store(store)
        self.n_disks = int(n_disks)
        self.disks_per_node = int(disks_per_node)
        if self.n_disks % self.disks_per_node:
            raise ValueError("n_disks must be a multiple of disks_per_node")
        self.n_nodes = self.n_disks // self.disks_per_node
        self.assignment = validate_assignment(assignment, self.store.n_pages, n_disks)
        self.lookup_time = float(lookup_time)
        self.plan_time_per_bucket = float(plan_time_per_bucket)

    def node_of_bucket(self, bucket_id: int) -> int:
        """Owning node of a page."""
        return int(self.assignment[bucket_id]) // self.disks_per_node

    def local_disk_of_bucket(self, bucket_id: int) -> int:
        """Local disk index (within the owning node) of a page."""
        return int(self.assignment[bucket_id]) % self.disks_per_node

    def node_of_disk(self, disk: int) -> int:
        """Owning node of a disk."""
        return int(disk) // self.disks_per_node

    def disks_of_node(self, node: int) -> range:
        """Global disk ids owned by ``node``."""
        return range(node * self.disks_per_node, (node + 1) * self.disks_per_node)

    def failover_requests(
        self,
        plan: QueryPlan,
        req: BlockRequest,
        failed_disks,
        scheme: str,
    ) -> "list[BlockRequest] | None":
        """Re-route one request's buckets to replica disks (§3.5, degraded).

        ``failed_disks`` is the coordinator's current suspicion set (every
        disk of every node it believes down).  Each bucket is walked to its
        effective replica disk under ``scheme`` (cascaded for chained);
        surviving targets are regrouped into per-node requests carrying
        ``target_disks`` so workers read the replica copies.  Returns ``None``
        when some bucket has no live replica (the query must abort).
        """
        failed = {int(f) for f in failed_disks}
        by_node: dict[int, list[tuple[int, int]]] = {}
        for b in req.bucket_ids:
            b = int(b)
            target = effective_disk(int(self.assignment[b]), self.n_disks, failed, scheme)
            if target is None:
                return None
            by_node.setdefault(self.node_of_disk(target), []).append((b, target))
        out = []
        for node in sorted(by_node):
            pairs = by_node[node]
            bids = np.array([b for b, _ in pairs], dtype=np.int64)
            targets = np.array([d for _, d in pairs], dtype=np.int64)
            out.append(
                BlockRequest(
                    query_id=req.query_id,
                    node_id=node,
                    bucket_ids=bids,
                    candidates=sum(plan.candidates_per_bucket[b] for b, _ in pairs),
                    qualified=sum(plan.qualified_per_bucket[b] for b, _ in pairs),
                    attempt=0,  # fresh retry budget against the new target
                    target_disks=targets,
                )
            )
        return out

    def plan(self, query_id: int, query: RangeQuery) -> QueryPlan:
        """Translate a query into per-node block requests.

        Queries that already carry a resolved page set (the SQL planner's
        :class:`repro.sql.plan.RoutedQuery` — e.g. the R-tree access path
        fetches only match-holding buckets) are honoured as-is; plain
        queries resolve against the store, the legacy behaviour.
        """
        page_ids = getattr(query, "page_ids", None)
        if page_ids is not None:
            bids = np.asarray(page_ids, dtype=np.int64)
        else:
            bids = self.store.query_pages(query.lo, query.hi)
        disks = self.assignment[bids]
        blocks_per_disk = np.bincount(disks, minlength=self.n_disks)

        requests: list[BlockRequest] = []
        candidates: dict[int, int] = {}
        qualified: dict[int, int] = {}
        cand_bucket: dict[int, int] = {}
        qual_bucket: dict[int, int] = {}
        nodes = disks // self.disks_per_node
        for node in np.unique(nodes):
            node_bids = bids[nodes == node]
            cand = 0
            qual = 0
            for b in node_bids:
                rec = self.store.page_records(int(b))
                bq = 0
                if rec.size:
                    bq = int(query.contains(self.store.record_coords(rec)).sum())
                cand_bucket[int(b)] = rec.size
                qual_bucket[int(b)] = bq
                cand += rec.size
                qual += bq
            requests.append(
                BlockRequest(
                    query_id, int(node), node_bids, candidates=cand, qualified=qual
                )
            )
            candidates[int(node)] = cand
            qualified[int(node)] = qual
        return QueryPlan(
            query_id=query_id,
            requests=requests,
            blocks_per_disk=blocks_per_disk,
            candidates_per_node=candidates,
            qualified_per_node=qualified,
            candidates_per_bucket=cand_bucket,
            qualified_per_bucket=qual_bucket,
        )

    def plan_cpu_time(self, plan: QueryPlan) -> float:
        """CPU time the coordinator spends producing ``plan``."""
        n_buckets = int(plan.blocks_per_disk.sum())
        return self.lookup_time + self.plan_time_per_bucket * n_buckets
