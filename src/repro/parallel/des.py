"""A minimal discrete-event simulation kernel.

Deterministic, callback-based: events fire in (time, insertion-order) order,
so equal-time events are processed first-scheduled-first — which makes whole
cluster runs exactly reproducible.  :meth:`Simulator.schedule_at` returns an
:class:`Event` handle that can be cancelled before it fires (the cluster's
request timeouts are scheduled eagerly and cancelled when the reply lands);
cancelled events are skipped without advancing the clock or perturbing the
ordering of live events.  :class:`Resource` models a serially usable unit
(a disk, a NIC) through reservation: callers ask for the earliest slot at or
after a given time and the resource returns the granted ``(start, end)``
window.

Boundary semantics of :meth:`Simulator.run` (regression-tested in
``tests/test_des.py``): an event scheduled exactly at ``until`` fires in
that run, exactly once — never again in a later run; the clock is clamped
monotone (an event admitted by ``schedule_at``'s 1e-12 past-tolerance can
never move ``now`` backwards); and cancelled events are discarded without
firing, so they never appear in traces.

Observability: construct with ``Simulator(tracer=...)`` (any
:class:`repro.obs.Tracer`) and every *fired* callback emits a ``sim.fire``
event — the causal backbone under the protocol-level records the cluster
engine adds on top.  With the default ``tracer=None`` the loop is exactly
the untraced loop.

The pending-event structure is pluggable (``Simulator(queue="calendar")``
or the ``REPRO_DES_QUEUE`` environment variable): the default binary heap
pays O(log n) per event, the calendar queue amortized O(1) — million-event
open-system runs stop paying the heap's log factor.  Both produce the
identical ``(time, seq)`` pop order, so simulated results do not depend on
the choice (see :mod:`repro.parallel.eventq`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.eventq import make_event_queue

__all__ = ["Simulator", "Resource", "Event"]


class Event:
    """Handle for a scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "cancelled", "fired")

    def __init__(self, time: float):
        self.time = time
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        return not (self.cancelled or self.fired)


class Simulator:
    """Event loop: schedule callbacks at future times, run until drained.

    Parameters
    ----------
    tracer:
        Optional :class:`repro.obs.Tracer`; when enabled, each fired
        callback emits a ``sim.fire`` trace event (cancelled events emit
        nothing).  ``None`` (default) traces nothing.
    queue:
        Pending-event structure: ``"heap"`` (binary heap, the legacy
        default) or ``"calendar"`` (calendar queue, amortized O(1) per
        event).  ``None`` consults ``REPRO_DES_QUEUE``.  Event ordering —
        and therefore every simulated result — is identical either way.
    """

    def __init__(self, tracer=None, queue: "str | None" = None):
        self._queue = make_event_queue(queue)
        self._seq = 0
        self.now = 0.0
        self._tracer = tracer if tracer is not None and tracer.enabled else None

    def schedule_at(self, time: float, callback, *args) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        ev = Event(float(time))
        self._queue.push((float(time), self._seq, ev, callback, args))
        self._seq += 1
        return ev

    def schedule(self, delay: float, callback, *args) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback, *args)

    def run(self, until: "float | None" = None) -> float:
        """Process events (optionally only up to time ``until``).

        Events scheduled exactly at ``until`` fire (inclusive upper bound);
        each fires exactly once even across repeated ``run(until=...)``
        calls with the same boundary.  Returns the simulation clock after
        the run.
        """
        tracer = self._tracer
        queue = self._queue
        while True:
            head = queue.peek()
            if head is None:
                break
            time, _, ev, callback, args = head
            if ev.cancelled:
                # Cancelled events are discarded without touching the clock
                # (and never traced — they did not happen).
                queue.pop()
                continue
            if until is not None and time > until:
                break
            queue.pop()
            if time > self.now:
                # Clamp: an event admitted by schedule_at's 1e-12 tolerance
                # must not move the clock backwards (trace timestamps and
                # downstream schedule(delay) calls rely on monotonicity).
                self.now = time
            ev.fired = True
            if tracer is not None:
                tracer.event(
                    "sim.fire",
                    self.now,
                    entity="sim",
                    callback=getattr(callback, "__qualname__", None)
                    or type(callback).__name__,
                )
            callback(*args)
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events not yet processed."""
        return sum(1 for _, _, ev, _, _ in self._queue if not ev.cancelled)


@dataclass
class Resource:
    """A serially usable resource (disk, NIC, CPU) with FIFO reservation.

    Reservations are granted in call order: each returns the earliest window
    of the requested duration starting no earlier than ``earliest``.
    """

    name: str = "resource"
    busy_until: float = 0.0
    #: Total reserved (busy) time, for utilization reporting.
    busy_time: float = field(default=0.0)

    def reserve(self, earliest: float, duration: float) -> tuple[float, float]:
        """Reserve ``duration`` seconds; returns the granted ``(start, end)``."""
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        start = max(earliest, self.busy_until)
        end = start + duration
        self.busy_until = end
        self.busy_time += duration
        return start, end
