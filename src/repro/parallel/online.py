"""Online mixed read/write engine: a live grid file under the cluster.

Everywhere else in the repo the grid file is *frozen* before it is
declustered: build, assign, then measure queries.  This module drives an
interleaved stream of inserts, deletes and range queries (a
:func:`repro.sim.workload.mixed_workload`) through the simulated cluster
while the grid file keeps restructuring itself underneath:

* **Writes** travel the same protocol path as reads — coordinator CPU
  lookup, NIC transfer to the owning node, a one-block disk write — and
  only then mutate the structure, so write latency competes with query
  traffic for the very same simulated resources.
* **Splits** triggered by inserts create buckets that did not exist when
  the assignment was computed.  A pluggable
  :class:`repro.core.placement.PlacementPolicy` places each one online and
  may request bounded maintenance moves; every move is charged its real
  cost (source disk read, network transfer, destination disk write).
* **Merges and renumbering** (bucket removal swaps the last id down)
  invalidate stale worker-cache entries through
  :meth:`repro._util.lru.LRUCache.invalidate` — a cached block whose id
  was reused must never serve a later read.
* A **degradation monitor** watches the windowed ratio of each query's
  response time ``max_i N_i(q)`` to its lower bound ``⌈touched/M⌉``; when
  the declustering has degraded past a threshold it triggers a
  reorganization bounded by a movement budget
  (:func:`repro.core.redistribute.bounded_reconcile`).

Operations execute strictly sequentially (a closed system with depth 1, the
paper's workload model), so query plans never race structure mutations.

The driver is a thin composition over the same
:class:`repro.parallel.engine.pipeline.RequestPipeline` that powers the
static engine (built with ``lazy_plan=True`` so each query plans against
the live store at submit time) — it is not a subclass; queries flow through
the unmodified pipeline stages while the write path reserves the very same
simulated resources.

**Neutrality pin:** with a write-free workload and no monitor, an
:class:`OnlineCluster` run is bit-for-bit identical to
:meth:`repro.parallel.cluster.ParallelGridFile.run_queries` on the same
queries — the lazy per-submit planning sees an unmutated grid file, no
online event ever fires, and no online metric instrument is created
(``tests/test_online.py`` pins the report hashes against each other).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.core.placement import PlacementPolicy, make_placement
from repro.core.redistribute import bounded_reconcile
from repro.gridfile.gridfile import GridFile
from repro.obs import PROFILER
from repro.parallel.cluster import ClusterParams, ParallelGridFile, PerfReport
from repro.parallel.engine.pipeline import RequestPipeline
from repro.parallel.stores import DurableGridFileStore, GridFileStore
from repro.sim.workload import Operation

__all__ = ["DegradationMonitor", "OnlineReport", "OnlineCluster"]


@dataclass(frozen=True)
class DegradationMonitor:
    """Reorganization trigger configuration (``None`` disables reorgs).

    The engine tracks, per completed query, the ratio of its response time
    ``max_i N_i(q)`` to the balanced lower bound ``⌈touched/M⌉``.  When the
    mean ratio over the last ``window`` queries exceeds ``threshold`` (and
    at least ``cooldown`` queries have completed since the last trigger),
    the engine recomputes a fresh assignment with ``method`` and reconciles
    toward it under ``budget`` (fraction of non-empty buckets allowed to
    move; see :func:`repro.core.redistribute.bounded_reconcile`).
    """

    window: int = 32
    threshold: float = 1.5
    cooldown: int = 64
    budget: float = 0.2
    method: str = "minimax"

    def __post_init__(self):
        if self.window < 1 or self.cooldown < 0:
            raise ValueError("window must be >= 1 and cooldown >= 0")
        if self.threshold < 1.0:
            raise ValueError(f"threshold must be >= 1, got {self.threshold}")
        if self.budget < 0:
            raise ValueError(f"budget must be non-negative, got {self.budget}")


@dataclass
class OnlineReport:
    """Results of a mixed read/write run.

    ``perf`` is the unchanged query-side :class:`PerfReport` (latencies and
    completion times cover queries only); the remaining fields describe the
    write path and the declustering maintenance that rode along.
    """

    perf: PerfReport
    n_ops: int
    n_inserts: int
    n_deletes: int
    #: Deletes that found no live record (counted, not an error).
    n_noop_deletes: int
    n_splits: int
    n_merges: int
    n_refines: int
    #: Buckets moved by placement maintenance (policy steals / recomputes).
    policy_moves: int
    #: Buckets moved by monitor-triggered reorganizations.
    reorg_moves: int
    n_reorgs: int
    #: Worker-cache entries dropped because their block went stale.
    cache_invalidations: int
    #: Mean over queries of ``max_i N_i(q) / ⌈touched/M⌉`` (1.0 = optimal).
    mean_rq_ratio: float
    #: Sum of simulated write latencies (submission to acknowledgement).
    write_time: float
    #: Completion time of the last write (0.0 when the workload has none).
    last_write_end: float
    final_buckets: int
    final_records: int

    @property
    def buckets_moved(self) -> int:
        """Total maintenance movement (policy + reorganizations)."""
        return self.policy_moves + self.reorg_moves

    @property
    def movement_fraction(self) -> float:
        """Buckets moved per final bucket — the cost axis of the sweep."""
        return self.buckets_moved / self.final_buckets if self.final_buckets else 0.0

    @property
    def elapsed_time(self) -> float:
        """Simulated seconds to drain the whole operation stream."""
        return max(self.perf.elapsed_time, self.last_write_end)

    @property
    def mean_write_latency(self) -> float:
        n_writes = self.n_inserts + self.n_deletes + self.n_noop_deletes
        return self.write_time / n_writes if n_writes else 0.0


class _OnlineDriver:
    """Sequential op driver over the live store; also a GridFile listener.

    Owns a lazily-planning :class:`RequestPipeline` for the query side and
    drives the write path against the same simulated resources.
    """

    def __init__(self, owner: ParallelGridFile, ops, policy, monitor, tracer=None, seed=0):
        self.ops = list(ops)
        for op in self.ops:
            if op.kind not in ("query", "insert", "delete"):
                raise ValueError(f"unknown operation kind {op.kind!r}")
            if op.kind == "query" and op.query is None:
                raise ValueError("query operation without a query")
            if op.kind == "insert" and op.point is None:
                raise ValueError("insert operation without a point")
        queries = [op.query for op in self.ops if op.kind == "query"]
        self.owner = owner
        self.params = owner.params
        # Plans must see the structure as of submit time, hence lazy_plan.
        self.pipe = RequestPipeline(owner, queries, faults=None, tracer=tracer, lazy_plan=True)
        self.sim = self.pipe.sim
        self.net = self.pipe.net
        self.nodes = self.pipe.nodes
        self.metrics = self.pipe.metrics
        self.tracer = self.pipe.tracer
        self.trace = self.pipe.trace
        self.coord_cpu = self.pipe.coord_cpu
        self.coord_nic = self.pipe.coord_nic
        self.gf: GridFile = owner.store.gf
        #: Crash-safe backing store, when the cluster was built over one.
        #: Each applied operation is committed as one WAL transaction; the
        #: storage engine's counters land in this run's metrics registry.
        self.durable: "DurableGridFileStore | None" = (
            owner.store if isinstance(owner.store, DurableGridFileStore) else None
        )
        if self.durable is not None:
            self.durable.engine.metrics = self.metrics
        #: Autoscale seam (None unless ``params.autoscale`` is set): query
        #: completions feed its heat tracker through the pipeline; the
        #: listener hooks below keep its controller's bucket bookkeeping
        #: aligned with the live structure (splits, renumbering, moves) and
        #: invalidate replicas whose content a write changed.
        self.autoscale = self.pipe.autoscale
        self.policy: PlacementPolicy = policy
        self.monitor = monitor
        self.assign_list = [int(d) for d in owner.coordinator.assignment]
        if monitor is not None:
            from repro.core.registry import make_method

            self._reorg_method = make_method(monitor.method)
            self._reorg_rng = as_rng(seed)
            self._window = deque(maxlen=monitor.window)
            self._since_reorg = monitor.cooldown
        self._op_i = 0
        self._next_qid = 0
        self._pending_new: list[tuple[int, int]] = []
        self._write_bucket = -1
        self._write_submit = 0.0
        self.rq_ratios: list[float] = []
        self.n_inserts = 0
        self.n_deletes = 0
        self.n_noop_deletes = 0
        self.n_splits = 0
        self.n_merges = 0
        self.n_refines = 0
        self.policy_moves = 0
        self.reorg_moves = 0
        self.n_reorgs = 0
        self.n_invalidations = 0
        self.write_time = 0.0
        self.last_write_end = 0.0
        self.pipe.on_complete = self._query_done

    # -- operation driver ---------------------------------------------------

    def drive(self) -> None:
        """Install listeners, start the stream, run the simulation."""
        self.gf.add_listener(self)
        try:
            self._next_op()
            with PROFILER.phase("online.run"):
                self.sim.run()
        finally:
            self.gf.remove_listener(self)
        if self._op_i < len(self.ops):  # pragma: no cover - defensive
            raise RuntimeError("simulation drained with operations pending")

    def _next_op(self) -> None:
        if self._op_i >= len(self.ops):
            return
        op = self.ops[self._op_i]
        self._op_i += 1
        # Open arrivals: an op never starts before its arrival instant, but
        # the stream stays sequential (closed once the system is saturated).
        if op.time is not None and op.time > self.sim.now:
            self.sim.schedule_at(float(op.time), self._start_op, op)
        else:
            self._start_op(op)

    def _start_op(self, op: Operation) -> None:
        if op.kind == "query":
            qid = self._next_qid
            self._next_qid += 1
            self.pipe.submit(qid)
        else:
            self._submit_write(op)

    def _query_done(self, qid: int) -> None:
        plan = self.pipe.plans[qid]
        touched = int(plan.blocks_per_disk.sum())
        if touched:
            optimal = -(-touched // self.owner.n_disks)
            ratio = plan.response_by_definition / optimal
        else:
            ratio = 1.0
        self.rq_ratios.append(ratio)
        if self.monitor is not None:
            self._window.append(ratio)
            self._since_reorg += 1
            self.metrics.gauge("online.rq_ratio.window").set(
                sum(self._window) / len(self._window)
            )
            if (
                len(self._window) == self.monitor.window
                and self._since_reorg >= self.monitor.cooldown
                and sum(self._window) / len(self._window) > self.monitor.threshold
            ):
                end = self._reorganize()
                if end > self.sim.now:
                    self.sim.schedule_at(end, self._next_op)
                    return
        self._next_op()

    # -- write path ---------------------------------------------------------

    def _submit_write(self, op: Operation) -> None:
        self._write_submit = self.sim.now
        self.metrics.counter(f"online.{op.kind}s.submitted").inc()
        _, cpu_end = self.coord_cpu.reserve(self.sim.now, self.params.lookup_time)
        if op.kind == "insert":
            cell = self.gf.scales.locate(np.asarray(op.point, dtype=np.float64))
            rid = -1
            payload = self.params.header_bytes + self.params.record_bytes
        else:
            if op.record_id is not None:
                # Targeted delete (the SQL engine resolved the victim
                # against the live structure at plan time).
                rid = int(op.record_id)
                if not self.gf.is_live(rid):
                    self.n_noop_deletes += 1
                    self.sim.schedule_at(cpu_end, self._write_done, op)
                    return
            else:
                live = self.gf.live_record_ids()
                if live.size == 0:
                    self.n_noop_deletes += 1
                    self.sim.schedule_at(cpu_end, self._write_done, op)
                    return
                rid = int(live[min(int(op.delete_rank * live.size), live.size - 1)])
            cell = self.gf.scales.locate(self.gf.points[rid])
            payload = self.params.header_bytes + self.params.bucket_id_bytes
        bid = self.gf.directory.bucket_at(cell)
        node_id = self.owner.coordinator.node_of_bucket(bid)
        t = self.net.transfer_time(payload)
        _, send_end = self.coord_nic.reserve(cpu_end, t)
        self.pipe.stats.comm_time += t + self.net.latency
        if self.trace:
            self.tracer.event(
                "write.send",
                self.sim.now,
                entity="coord",
                kind=op.kind,
                bucket=int(bid),
                node=node_id,
            )
        self.sim.schedule_at(
            send_end + self.net.latency, self._worker_write, op, int(bid), rid, node_id
        )

    def _disk_op(self, disk: int, earliest: float) -> float:
        """Reserve one block of service on global ``disk``; end time."""
        dpn = self.params.disks_per_node
        node = self.nodes[disk // dpn]
        local = disk % dpn
        service = node.disk_model.service_time(1, node.disk_slowdown[local])
        _, end = node.disks[local].reserve(earliest, service)
        return end

    def _worker_write(self, op: Operation, bid: int, rid: int, node_id: int) -> None:
        # Read-modify-write of the target block on its owning disk.
        end = self._disk_op(self.assign_list[bid], self.sim.now)
        self.sim.schedule_at(end, self._apply_write, op, rid, node_id)

    def _apply_write(self, op: Operation, rid: int, node_id: int) -> None:
        self._pending_new.clear()
        self._write_bucket = -1
        if op.kind == "insert":
            self.gf.insert_point(op.point)
            self.n_inserts += 1
        else:
            self.gf.delete_record(rid)
            self.n_deletes += 1
        if self.durable is not None:
            # Durably commit the operation (and any split/merge it caused)
            # as one WAL transaction.  Real I/O adds no simulated time: the
            # analytic disk model above remains the cost authority.
            self.durable.commit_op()
        end = self.sim.now
        # Freshly split buckets are written out to their assigned disks.
        for new_id, disk in self._pending_new:
            src = self.nodes[node_id]
            dst = self.nodes[disk // self.params.disks_per_node]
            arrive = end
            if dst is not src:
                t = self.net.transfer_time(self.params.disk.block_bytes)
                _, send_end = src.nic.reserve(end, t)
                self.pipe.stats.comm_time += t + self.net.latency
                arrive = send_end + self.net.latency
            end = self._disk_op(disk, arrive)
        self._pending_new.clear()
        self._sync_assignment()
        # Policy maintenance: bounded moves to keep the declustering healthy.
        moves = self.policy.maintain(
            self.gf, self.owner.coordinator.assignment, self.owner.n_disks
        )
        for b, dst in moves:
            b, dst = int(b), int(dst)
            src = self.assign_list[b]
            if src == dst:
                continue
            end = self._move_bucket(b, src, dst, end)
            self.policy_moves += 1
            self.metrics.counter("online.policy_moves").inc()
        if moves:
            self._sync_assignment()
        # Acknowledge the write back to the coordinator.
        t = self.net.transfer_time(self.params.header_bytes)
        _, ack_end = self.nodes[node_id].nic.reserve(end, t)
        self.pipe.stats.comm_time += t + self.net.latency
        self.sim.schedule_at(ack_end + self.net.latency, self._write_done, op)

    def _write_done(self, op: Operation) -> None:
        self.write_time += self.sim.now - self._write_submit
        self.last_write_end = self.sim.now
        self.metrics.counter(f"online.{op.kind}s.completed").inc()
        if self.trace:
            self.tracer.event(
                "write.done", self.sim.now, entity="coord", kind=op.kind
            )
        self._next_op()

    # -- maintenance movement ------------------------------------------------

    def _move_bucket(self, b: int, src: int, dst: int, earliest: float) -> float:
        """Ship bucket ``b`` from disk ``src`` to ``dst``; completion time."""
        read_end = self._disk_op(src, earliest)
        dpn = self.params.disks_per_node
        arrive = read_end
        if src // dpn != dst // dpn:
            t = self.net.transfer_time(self.params.disk.block_bytes)
            _, send_end = self.nodes[src // dpn].nic.reserve(read_end, t)
            self.pipe.stats.comm_time += t + self.net.latency
            arrive = send_end + self.net.latency
        write_end = self._disk_op(dst, arrive)
        self.assign_list[b] = dst
        if self.autoscale is not None:
            self.autoscale.primary_moved(b, dst)
        self._invalidate(b, "move")
        if self.trace:
            self.tracer.event(
                "bucket.move", self.sim.now, entity="online", bucket=b, src=src, dst=dst
            )
        return write_end

    def _reorganize(self) -> float:
        """Monitor-triggered bounded reorganization; returns completion time."""
        mon = self.monitor
        self._since_reorg = 0
        self._window.clear()
        current = np.asarray(self.assign_list, dtype=np.int64)
        sizes = self.gf.bucket_sizes()
        target = self._reorg_method.assign(
            self.gf, self.owner.n_disks, rng=self._reorg_rng
        )
        merged, moved = bounded_reconcile(current, target, mon.budget, sizes=sizes)
        self.n_reorgs += 1
        self.metrics.counter("online.reorgs").inc()
        if self.trace:
            self.tracer.event(
                "reorg.start",
                self.sim.now,
                entity="online",
                n_moves=int(moved.size),
                method=mon.method,
            )
        end = self.sim.now
        for b in moved:
            b = int(b)
            end = self._move_bucket(b, self.assign_list[b], int(merged[b]), end)
            self.reorg_moves += 1
        self.metrics.counter("online.reorg_moves").inc(int(moved.size))
        if moved.size:
            self._sync_assignment()
        if self.trace:
            self.tracer.event("reorg.end", self.sim.now, entity="online", end=end)
        return end

    def _sync_assignment(self) -> None:
        if len(self.assign_list) != self.gf.n_buckets:  # pragma: no cover
            raise RuntimeError(
                f"assignment tracks {len(self.assign_list)} buckets, "
                f"grid file has {self.gf.n_buckets}"
            )
        self.owner.coordinator.assignment = np.asarray(
            self.assign_list, dtype=np.int64
        )

    def _invalidate(self, bid: int, reason: str) -> None:
        """Drop bucket ``bid`` from every worker cache (stale content/id)."""
        n = sum(1 for node in self.nodes if node.cache.invalidate(bid))
        if n:
            self.n_invalidations += n
            self.metrics.counter("online.cache_invalidations").inc(n)
            if self.trace:
                self.tracer.event(
                    "cache.invalidate",
                    self.sim.now,
                    entity="online",
                    bucket=bid,
                    nodes=n,
                    reason=reason,
                )

    # -- GridFile listener callbacks ----------------------------------------

    def on_record(self, gf, bucket_id: int, kind: str) -> None:
        self._write_bucket = bucket_id
        if self.autoscale is not None:
            # Write-invalidation coherence: the replica copy went stale.
            self.autoscale.bucket_dirty(bucket_id)
        self._invalidate(bucket_id, kind)

    def on_split(self, gf, bucket_id: int, new_bucket_id: int) -> None:
        assignment = np.asarray(self.assign_list, dtype=np.int64)
        disk = int(
            self.policy.place(gf, assignment, new_bucket_id, self.owner.n_disks)
        )
        if not 0 <= disk < self.owner.n_disks:
            raise ValueError(
                f"policy {self.policy.name!r} placed bucket on disk {disk}"
            )
        self.assign_list.append(disk)
        if self.autoscale is not None:
            self.autoscale.bucket_added(disk)
            self.autoscale.bucket_dirty(bucket_id)
        self._pending_new.append((new_bucket_id, disk))
        self.n_splits += 1
        self.metrics.counter("online.splits").inc()
        self._invalidate(bucket_id, "split")
        if self.trace:
            self.tracer.event(
                "bucket.split",
                self.sim.now,
                entity="online",
                bucket=bucket_id,
                new_bucket=new_bucket_id,
                disk=disk,
            )

    def on_merge(self, gf, survivor_id: int, absorbed_id: int) -> None:
        self.n_merges += 1
        self.metrics.counter("online.merges").inc()
        if self.autoscale is not None:
            self.autoscale.bucket_dirty(survivor_id)
            self.autoscale.bucket_dirty(absorbed_id)
        self._invalidate(survivor_id, "merge")
        self._invalidate(absorbed_id, "merge")
        if self.trace:
            self.tracer.event(
                "bucket.merge",
                self.sim.now,
                entity="online",
                survivor=survivor_id,
                absorbed=absorbed_id,
            )

    def on_remove(self, gf, bucket_id: int, moved_id: "int | None") -> None:
        # Swap-removal renumbering: the last bucket takes over ``bucket_id``.
        if self.autoscale is not None:
            self.autoscale.bucket_removed(bucket_id, moved_id)
        if moved_id is None:
            self.assign_list.pop()
        else:
            self.assign_list[bucket_id] = self.assign_list[moved_id]
            self.assign_list.pop()
            self._invalidate(moved_id, "renumber")
        self._invalidate(bucket_id, "renumber")

    def on_refine(self, gf, dim: int, interval: int) -> None:
        self.n_refines += 1
        self.metrics.counter("online.refines").inc()

    # -- reporting ----------------------------------------------------------

    def online_report(self) -> OnlineReport:
        return OnlineReport(
            perf=self.pipe.report(),
            n_ops=len(self.ops),
            n_inserts=self.n_inserts,
            n_deletes=self.n_deletes,
            n_noop_deletes=self.n_noop_deletes,
            n_splits=self.n_splits,
            n_merges=self.n_merges,
            n_refines=self.n_refines,
            policy_moves=self.policy_moves,
            reorg_moves=self.reorg_moves,
            n_reorgs=self.n_reorgs,
            cache_invalidations=self.n_invalidations,
            mean_rq_ratio=(
                float(np.mean(self.rq_ratios)) if self.rq_ratios else 0.0
            ),
            write_time=self.write_time,
            last_write_end=self.last_write_end,
            final_buckets=self.gf.n_buckets,
            final_records=self.gf.n_records,
        )


class OnlineCluster:
    """A live grid file declustered on the simulated cluster.

    Parameters
    ----------
    gf:
        The grid file (mutated in place by the run's inserts/deletes), or a
        :class:`repro.parallel.stores.GridFileStore` wrapping one — pass a
        :class:`repro.parallel.stores.DurableGridFileStore` to have every
        applied operation committed to the crash-safe storage engine (one
        WAL transaction per operation, checkpoint when the run drains).
    assignment:
        ``(n_buckets,)`` initial disk ids.
    n_disks:
        Total disks; multiple of ``params.disks_per_node``.
    params:
        Cost model (:class:`repro.parallel.cluster.ClusterParams`).
        Replication is not supported online (writes to replicas are not
        modeled) — and with it the replica-balancing read policies.
        ``params.autoscale`` *is* supported: autoscaler replicas stay
        coherent by write-invalidation (a write to a bucket drops its
        replica; the heat loop may re-create it later).  The
        online stream is sequential, so ``pipeline_depth`` is effectively 1
        and open-system admission control (``max_inflight``/``deadline``)
        does not apply.  The ``scheduler`` seam works online.
    placement:
        A :class:`repro.core.placement.PlacementPolicy` or policy name
        (see :data:`repro.core.placement.PLACEMENT_POLICIES`).
    monitor:
        Optional :class:`DegradationMonitor`; ``None`` disables
        reorganizations.
    seed:
        Seed for reorganization tie-breaking.
    """

    def __init__(
        self,
        gf: GridFile,
        assignment: np.ndarray,
        n_disks: int,
        params: "ClusterParams | None" = None,
        placement="rr-least-loaded",
        monitor: "DegradationMonitor | None" = None,
        seed=1996,
    ):
        if isinstance(gf, GridFileStore):
            store, gf = gf, gf.gf
        elif isinstance(gf, GridFile):
            store = None
        else:
            raise TypeError("OnlineCluster requires a live GridFile store")
        self.pgf = ParallelGridFile(store if store is not None else gf, assignment, n_disks, params)
        if self.pgf.params.replication is not None:
            raise ValueError("replication is not supported by the online engine")
        if self.pgf.params.max_inflight is not None or self.pgf.params.deadline is not None:
            raise ValueError(
                "admission control (max_inflight/deadline) applies to open-system "
                "runs only; the online stream is sequential"
            )
        self.gf = gf
        self.placement = make_placement(placement)
        self.monitor = monitor
        self.seed = seed

    def run(self, ops, tracer=None) -> OnlineReport:
        """Drive the operation stream to completion; mutates the grid file."""
        engine = _OnlineDriver(
            self.pgf,
            ops,
            self.placement,
            self.monitor,
            tracer=tracer,
            seed=self.seed,
        )
        engine.drive()
        if engine.durable is not None:
            # Durability point: fsync the device, truncate the WAL.
            engine.durable.checkpoint()
        return engine.online_report()
