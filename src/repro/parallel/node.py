"""Worker nodes of the simulated shared-nothing cluster.

Each node owns one or more local disks (the paper's SP-2 had one per node;
its future-work configuration seven), an LRU buffer cache shared by those
disks, a CPU for record filtering, and a NIC.  A block request is served by
reading the cache-missing blocks from the owning disks (in parallel across
disks, serially within one), filtering the candidate records, and streaming
the qualified records back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.cache import LRUCache
from repro.parallel.des import Resource
from repro.parallel.disk import DiskModel
from repro.parallel.message import BlockReply, BlockRequest

__all__ = ["WorkerNode"]


@dataclass
class WorkerNode:
    """One worker: disks + cache + CPU + NIC, all FIFO resources."""

    node_id: int
    disk_model: DiskModel
    cache: LRUCache
    disks: list[Resource]
    cpu: Resource
    nic: Resource
    cpu_filter_per_record: float = 2e-6
    #: Total blocks requested from this node across the run.
    blocks_requested: int = 0
    #: Total blocks actually read from disk (cache misses).
    blocks_read: int = 0
    records_filtered: int = 0
    records_qualified: int = 0

    @classmethod
    def create(
        cls,
        node_id: int,
        disk_model: DiskModel,
        cache_blocks: int,
        disks_per_node: int = 1,
        cpu_filter_per_record: float = 2e-6,
    ) -> "WorkerNode":
        """Build a node with fresh resources."""
        return cls(
            node_id=node_id,
            disk_model=disk_model,
            cache=LRUCache(cache_blocks),
            disks=[Resource(f"node{node_id}.disk{i}") for i in range(disks_per_node)],
            cpu=Resource(f"node{node_id}.cpu"),
            nic=Resource(f"node{node_id}.nic"),
            cpu_filter_per_record=cpu_filter_per_record,
        )

    def serve(
        self,
        arrival: float,
        request: BlockRequest,
        disk_of_bucket,
        candidates: int,
        qualified: int,
    ) -> tuple[float, BlockReply]:
        """Process a block request arriving at ``arrival``.

        Parameters
        ----------
        arrival:
            Simulated arrival time of the request at this node.
        request:
            The block request.
        disk_of_bucket:
            Callable mapping a bucket id to this node's local disk index.
        candidates:
            Number of records in the requested buckets (CPU filter cost).
        qualified:
            Number of records inside the query box (reply payload).

        Returns
        -------
        (ready_time, reply):
            Time at which the reply payload is ready for the NIC (CPU done),
            and the reply message.
        """
        # Cache lookups happen in arrival order (FIFO node), so mutating the
        # LRU here is consistent with processing order.
        misses_per_disk: dict[int, int] = {}
        n_misses = 0
        for bid in request.bucket_ids:
            if not self.cache.access(int(bid)):
                d = disk_of_bucket(int(bid))
                misses_per_disk[d] = misses_per_disk.get(d, 0) + 1
                n_misses += 1

        # Disks work in parallel; each disk serves its blocks as one request.
        disk_done = arrival
        for d, n_blocks in misses_per_disk.items():
            _, end = self.disks[d].reserve(arrival, self.disk_model.service_time(n_blocks))
            disk_done = max(disk_done, end)

        # CPU filtering starts when all blocks are in memory.
        _, cpu_done = self.cpu.reserve(disk_done, self.cpu_filter_per_record * candidates)

        self.blocks_requested += request.n_blocks
        self.blocks_read += n_misses
        self.records_filtered += candidates
        self.records_qualified += qualified
        reply = BlockReply(
            query_id=request.query_id,
            node_id=self.node_id,
            n_blocks=request.n_blocks,
            n_cache_misses=n_misses,
            n_candidates=candidates,
            n_qualified=qualified,
        )
        return cpu_done, reply
