"""Worker nodes of the simulated shared-nothing cluster.

Each node owns one or more local disks (the paper's SP-2 had one per node;
its future-work configuration seven), an LRU buffer cache shared by those
disks, a CPU for record filtering, and a NIC.  A block request is served by
reading the cache-missing blocks from the owning disks (in parallel across
disks, serially within one), filtering the candidate records, and streaming
the qualified records back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.lru import LRUCache
from repro.parallel.des import Resource
from repro.parallel.disk import DiskModel
from repro.parallel.message import BlockReply, BlockRequest

__all__ = ["WorkerNode"]


@dataclass
class WorkerNode:
    """One worker: disks + cache + CPU + NIC, all FIFO resources.

    Degradable state (mutated by :class:`repro.parallel.faults.FaultInjector`
    mid-run): ``alive`` gates whether delivered requests are served at all,
    and ``disk_slowdown`` holds a per-local-disk service-time multiplier that
    :meth:`serve` applies on every read.  Crash/recovery bookkeeping feeds the
    alive-window utilization in :class:`repro.parallel.cluster.PerfReport`.
    """

    node_id: int
    disk_model: DiskModel
    cache: LRUCache
    disks: list[Resource]
    cpu: Resource
    nic: Resource
    cpu_filter_per_record: float = 2e-6
    #: Total blocks requested from this node across the run.
    blocks_requested: int = 0
    #: Total blocks actually read from disk (cache misses).
    blocks_read: int = 0
    records_filtered: int = 0
    records_qualified: int = 0
    #: False while the node is crashed (requests delivered then are dropped).
    alive: bool = True
    #: Simulated time of the current crash (None while up).
    down_since: "float | None" = None
    #: Accumulated crashed time over completed down intervals.
    down_time: float = 0.0
    #: Per-local-disk service-time multipliers (1.0 = healthy).
    disk_slowdown: list = field(default_factory=list)

    @classmethod
    def create(
        cls,
        node_id: int,
        disk_model: DiskModel,
        cache_blocks: int,
        disks_per_node: int = 1,
        cpu_filter_per_record: float = 2e-6,
    ) -> "WorkerNode":
        """Build a node with fresh resources."""
        return cls(
            node_id=node_id,
            disk_model=disk_model,
            cache=LRUCache(cache_blocks),
            disks=[Resource(f"node{node_id}.disk{i}") for i in range(disks_per_node)],
            cpu=Resource(f"node{node_id}.cpu"),
            nic=Resource(f"node{node_id}.nic"),
            cpu_filter_per_record=cpu_filter_per_record,
            disk_slowdown=[1.0] * disks_per_node,
        )

    # -- degraded-mode transitions ------------------------------------------

    def crash(self, now: float) -> None:
        """Take the node down: volatile state (the buffer cache) is lost."""
        if not self.alive:
            return
        self.alive = False
        self.down_since = now
        # A restarted node comes back with a cold cache; hit/miss counters
        # survive (they are run statistics, not node state).
        hits, misses = self.cache.hits, self.cache.misses
        self.cache = LRUCache(self.cache.capacity)
        self.cache.hits, self.cache.misses = hits, misses

    def recover(self, now: float) -> None:
        """Bring a crashed node back up (cold cache, healthy disks)."""
        if self.alive:
            return
        self.alive = True
        self.down_time += now - self.down_since
        self.down_since = None
        # Work queued on the disks died with the node: restart with an empty
        # queue (requests delivered while down were dropped, not deferred).
        for d in self.disks:
            d.busy_until = now

    def alive_window(self, elapsed: float) -> float:
        """Seconds this node was up within ``[0, elapsed]``."""
        down = self.down_time
        if self.down_since is not None:
            down += max(0.0, elapsed - self.down_since)
        return max(0.0, elapsed - down)

    def probe_cache(self, request: BlockRequest, disk_of_bucket) -> tuple[dict, int]:
        """Cache stage of a block request: which blocks must hit which disk.

        Cache lookups happen in arrival order (FIFO node), so mutating the
        LRU here is consistent with processing order.  Returns the
        ``{local_disk: n_missing_blocks}`` map and the total miss count.
        """
        misses_per_disk: dict[int, int] = {}
        n_misses = 0
        for bid in request.bucket_ids:
            if not self.cache.access(int(bid)):
                d = disk_of_bucket(int(bid))
                misses_per_disk[d] = misses_per_disk.get(d, 0) + 1
                n_misses += 1
        return misses_per_disk, n_misses

    def disk_service(self, local_disk: int, n_blocks: int) -> tuple[float, float]:
        """(service seconds, slowdown factor) for reading ``n_blocks``
        sequentially from ``local_disk``, fault slowdowns applied."""
        slow = (
            self.disk_slowdown[local_disk]
            if local_disk < len(self.disk_slowdown)
            else 1.0
        )
        return self.disk_model.service_time(n_blocks, slow), slow

    def finish_request(
        self,
        disk_done: float,
        request: BlockRequest,
        candidates: int,
        qualified: int,
        n_misses: int,
    ) -> tuple[float, BlockReply]:
        """Filter/aggregate stage: CPU pass once all blocks are in memory,
        run-counter bookkeeping, and the reply message.  Returns the time
        the reply payload is ready for the NIC and the reply."""
        _, cpu_done = self.cpu.reserve(disk_done, self.cpu_filter_per_record * candidates)
        self.blocks_requested += request.n_blocks
        self.blocks_read += n_misses
        self.records_filtered += candidates
        self.records_qualified += qualified
        reply = BlockReply(
            query_id=request.query_id,
            node_id=self.node_id,
            n_blocks=request.n_blocks,
            n_cache_misses=n_misses,
            n_candidates=candidates,
            n_qualified=qualified,
        )
        return cpu_done, reply

    def serve(
        self,
        arrival: float,
        request: BlockRequest,
        disk_of_bucket,
        candidates: int,
        qualified: int,
        tracer=None,
        cause=None,
        metrics=None,
    ) -> tuple[float, BlockReply]:
        """Process a block request arriving at ``arrival``.

        Parameters
        ----------
        arrival:
            Simulated arrival time of the request at this node.
        request:
            The block request.
        disk_of_bucket:
            Callable mapping a bucket id to this node's local disk index.
        candidates:
            Number of records in the requested buckets (CPU filter cost).
        qualified:
            Number of records inside the query box (reply payload).
        tracer:
            Optional enabled :class:`repro.obs.Tracer`; each disk
            reservation emits a ``disk.read`` event (entity
            ``node{i}.disk{d}``, reservation window in attrs).
        cause:
            Trace id of the causing record (the request arrival).
        metrics:
            Optional :class:`repro.obs.MetricsRegistry`; observes the
            ``disk.service_time`` histogram per reservation.

        Returns
        -------
        (ready_time, reply):
            Time at which the reply payload is ready for the NIC (CPU done),
            and the reply message.
        """
        misses_per_disk, n_misses = self.probe_cache(request, disk_of_bucket)

        # Disks work in parallel; each disk serves its blocks as one request.
        # A degraded disk's fault-injected slowdown multiplies service time.
        disk_done = arrival
        for d, n_blocks in misses_per_disk.items():
            service, slow = self.disk_service(d, n_blocks)
            start, end = self.disks[d].reserve(arrival, service)
            if metrics is not None:
                metrics.histogram("disk.service_time").observe(service)
            if tracer is not None:
                tracer.event(
                    "disk.read",
                    arrival,
                    entity=f"node{self.node_id}.disk{d}",
                    cause=cause,
                    n_blocks=n_blocks,
                    start=start,
                    end=end,
                    slowdown=slow,
                )
            disk_done = max(disk_done, end)

        # CPU filtering starts when all blocks are in memory.
        return self.finish_request(disk_done, request, candidates, qualified, n_misses)
