"""Shared-nothing parallel grid files on a simulated cluster (paper §3.5).

The paper runs parallel grid files on a 16-node IBM SP-2: each node owns a
local disk, one node doubles as the **coordinator** holding the scales and
directory, and queries follow an SPMD protocol — the coordinator translates
a query into per-node block requests, workers read the blocks (with whatever
their buffer cache saves them), filter records, and ship qualified records
back.

That hardware is simulated here by a small discrete-event engine
(:mod:`repro.parallel.des`) with explicit cost models: a per-block disk
service time, an LRU buffer cache per node, and a latency + bandwidth
network with serialized NICs (the coordinator's ingest link is the shared
bottleneck, which is what makes communication time grow with the answer
size, as in Table 5).  The declustering-level metric — blocks fetched,
``max_i N_i(q)`` summed over queries — is exactly the paper's and does not
depend on the cost model at all.
"""

from repro._util.lru import LRUCache
from repro.parallel.autoscale import (
    AUTOSCALE_POLICIES,
    AutoscaleCluster,
    AutoscaleParams,
    AutoscaleReport,
    ScalePlan,
    make_autoscale_policy,
)
from repro.parallel.cluster import ClusterParams, LoadReport, ParallelGridFile, PerfReport
from repro.parallel.des import Event, Resource, Simulator
from repro.parallel.engine import (
    REPLICA_POLICIES,
    SCHEDULERS,
    RequestPipeline,
    make_replica_policy,
    make_scheduler,
)
from repro.parallel.disk import DiskModel
from repro.parallel.faults import FaultEvent, FaultInjector, FaultPlan
from repro.parallel.network import NetworkModel
from repro.parallel.online import DegradationMonitor, OnlineCluster, OnlineReport
from repro.parallel.replication import apply_failures, effective_disk, replica_assignment
from repro.parallel.stores import (
    DurableGridFileStore,
    GridFileStore,
    PageStore,
    RTreeStore,
    as_page_store,
    make_store,
)

__all__ = [
    "apply_failures",
    "effective_disk",
    "replica_assignment",
    "PageStore",
    "GridFileStore",
    "DurableGridFileStore",
    "RTreeStore",
    "as_page_store",
    "make_store",
    "Simulator",
    "Resource",
    "Event",
    "LRUCache",
    "DiskModel",
    "NetworkModel",
    "ClusterParams",
    "ParallelGridFile",
    "PerfReport",
    "LoadReport",
    "RequestPipeline",
    "SCHEDULERS",
    "REPLICA_POLICIES",
    "make_scheduler",
    "make_replica_policy",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "OnlineCluster",
    "OnlineReport",
    "DegradationMonitor",
    "AutoscaleParams",
    "AutoscaleCluster",
    "AutoscaleReport",
    "ScalePlan",
    "AUTOSCALE_POLICIES",
    "make_autoscale_policy",
]
