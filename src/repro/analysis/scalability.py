"""Scalability profiling of measured response-time curves.

Quantifies "the performance saturates around six disks" style observations:
given a response curve over increasing disk counts, find the saturation
point (the first configuration beyond which adding disks stops helping) and
summarize how far the curve sits from the optimal reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["saturation_point", "scalability_profile", "ScalabilityProfile"]


def saturation_point(disks, responses, tolerance: float = 0.02) -> int:
    """First disk count beyond which response improves by < ``tolerance``.

    Scans the curve for the earliest M such that no later configuration
    improves on the response at M by more than ``tolerance`` (relative).
    Returns the last disk count if the curve keeps improving throughout.
    """
    disks = list(disks)
    responses = np.asarray(responses, dtype=np.float64)
    if len(disks) != responses.shape[0] or not disks:
        raise ValueError("disks and responses must be equal-length, non-empty")
    for i in range(len(disks)):
        later = responses[i + 1 :]
        if later.size == 0:
            return disks[i]
        if later.min() >= responses[i] * (1.0 - tolerance):
            return disks[i]
    return disks[-1]


@dataclass(frozen=True)
class ScalabilityProfile:
    """Summary of one method's scalability on one workload."""

    #: Disk count at which the curve saturates.
    saturation: int
    #: response(M_min) / response(M_max): achieved end-to-end speedup.
    total_speedup: float
    #: Mean ratio of response to the optimal reference (1.0 = optimal).
    mean_ratio_to_optimal: float
    #: Ratio at the largest configuration.
    final_ratio_to_optimal: float


def scalability_profile(disks, responses, optimal, tolerance: float = 0.02) -> ScalabilityProfile:
    """Build a :class:`ScalabilityProfile` from a sweep's curves."""
    responses = np.asarray(responses, dtype=np.float64)
    optimal = np.asarray(optimal, dtype=np.float64)
    if responses.shape != optimal.shape:
        raise ValueError("responses and optimal must have the same shape")
    ratio = responses / np.maximum(optimal, 1e-12)
    return ScalabilityProfile(
        saturation=saturation_point(disks, responses, tolerance),
        total_speedup=float(responses[0] / responses[-1]),
        mean_ratio_to_optimal=float(ratio.mean()),
        final_ratio_to_optimal=float(ratio[-1]),
    )
