"""Analytic scalability models (paper §2.3).

Closed-form response times and optimality conditions for DM and FX on
Cartesian product files, together with exact brute-force evaluators that the
test suite uses to certify the formulas:

* **Theorem 1** — DM's response time for an l x l square query, and the
  necessary-and-sufficient strict-optimality condition (sharper than Li et
  al.'s CMD bounds);
* **Theorem 2** — FX's response for 2^m x 2^m queries on 2^n disks: exact
  below the threshold (n <= m), bounded above it, with the ≥3/4 ratio that
  shows doubling disks stops halving response time.

Both imply the headline scalability result: for a fixed query size, adding
disks beyond a threshold no longer reduces DM/FX response time.
"""

from repro.analysis.clustering import (
    clusters_of,
    hilbert_cluster_asymptote,
    mean_clusters,
)
from repro.analysis.bruteforce import (
    dm_response_exact,
    expected_response,
    fx_response_positions,
    response_for_query,
)
from repro.analysis.scalability import saturation_point, scalability_profile
from repro.analysis.selectivity import (
    expected_buckets_touched,
    intersect_probabilities,
    predicted_optimal_response,
)
from repro.analysis.theorem1 import (
    dm_is_strictly_optimal,
    dm_optimality_condition,
    dm_response_formula,
)
from repro.analysis.theorem2 import (
    fx_expected_response,
    fx_response_bounds,
    fx_response_formula,
)

__all__ = [
    "dm_response_exact",
    "dm_response_formula",
    "dm_is_strictly_optimal",
    "dm_optimality_condition",
    "fx_expected_response",
    "fx_response_formula",
    "fx_response_bounds",
    "fx_response_positions",
    "expected_response",
    "response_for_query",
    "saturation_point",
    "scalability_profile",
    "mean_clusters",
    "clusters_of",
    "hilbert_cluster_asymptote",
    "expected_buckets_touched",
    "intersect_probabilities",
    "predicted_optimal_response",
]
