"""Exact brute-force response times on Cartesian product files.

Ground truth for the closed forms in :mod:`repro.analysis.theorem1` and
:mod:`repro.analysis.theorem2`: enumerate the cells of a query box, apply
the per-cell disk function, and count the busiest disk.  Small and obviously
correct — which is the point.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int

__all__ = [
    "response_for_query",
    "expected_response",
    "dm_response_exact",
    "fx_response_positions",
]


def response_for_query(cell_disk_fn, query_shape, n_disks: int, origin=None) -> int:
    """Exact ``max_i N_i`` for one query box placed at ``origin``.

    Parameters
    ----------
    cell_disk_fn:
        Function mapping an ``(n, d)`` int cell array to ``(n,)`` disk ids
        (signature compatible with
        ``IndexBasedMethod.cell_disks(cells, n_disks, shape)`` partials).
    query_shape:
        Side lengths of the query in cells, one per dimension.
    n_disks:
        Number of disks M.
    origin:
        Lower corner of the query box (defaults to the origin).
    """
    check_positive_int(n_disks, "n_disks")
    query_shape = tuple(int(s) for s in query_shape)
    if origin is None:
        origin = (0,) * len(query_shape)
    axes = [np.arange(o, o + s) for o, s in zip(origin, query_shape)]
    mesh = np.meshgrid(*axes, indexing="ij")
    cells = np.stack([m.ravel() for m in mesh], axis=1)
    disks = np.asarray(cell_disk_fn(cells)) % n_disks
    return int(np.bincount(disks, minlength=n_disks).max())


def expected_response(cell_disk_fn, query_shape, n_disks: int, period: int) -> float:
    """Mean response over all query positions in ``[0, period)**d``.

    ``period`` must cover the positional periodicity of the scheme (M for
    DM, ``2**max(m, n)`` for FX on power-of-two queries).
    """
    check_positive_int(period, "period")
    d = len(query_shape)
    axes = [np.arange(period) for _ in range(d)]
    mesh = np.meshgrid(*axes, indexing="ij")
    origins = np.stack([m.ravel() for m in mesh], axis=1)
    total = 0
    for origin in origins:
        total += response_for_query(cell_disk_fn, query_shape, n_disks, origin)
    return total / origins.shape[0]


def dm_response_exact(l: int, n_disks: int) -> int:
    """Exact DM response for an l x l query (position independent).

    ``(i + j) mod M`` over the box shifts uniformly with the query corner,
    so the busiest-disk count is the same for every placement; computed from
    the triangular distribution of ``u + v`` with ``u, v`` in ``[0, l)``.
    """
    check_positive_int(l, "l")
    check_positive_int(n_disks, "n_disks")
    u = np.arange(l)
    sums = (u[:, None] + u[None, :]).ravel() % n_disks
    return int(np.bincount(sums, minlength=n_disks).max())


def fx_response_positions(m: int, n: int) -> np.ndarray:
    """FX responses of a 2^m x 2^m query at every position (2-d).

    Returns the full ``(P, P)`` response array with ``P = 2**max(m, n)``,
    the positional period of ``(i XOR j) mod 2**n``.  Used to check all
    three properties of Theorem 2 (the expected value, the bounds, and the
    3/4 doubling ratio).
    """
    l = 1 << int(m)
    M = 1 << int(n)
    P = 1 << max(int(m), int(n))
    out = np.empty((P, P), dtype=np.int64)
    base = np.arange(l)
    for a in range(P):
        ia = base + a
        for b in range(P):
            jb = base + b
            x = (ia[:, None] ^ jb[None, :]).ravel() % M
            out[a, b] = np.bincount(x, minlength=M).max()
    return out
