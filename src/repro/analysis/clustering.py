"""Clustering analysis of space-filling curves (the HCAM follow-up).

The paper closes §2.3 with "we are currently working on the analysis of the
scalability of HCAM".  The key quantity in that analysis is the *number of
clusters*: how many maximal runs of consecutive curve positions a query
region decomposes into.  Fewer clusters means the round-robin deal spreads a
query's buckets more evenly, which is exactly why HCAM keeps scaling where
DM/FX stall.

This module computes the mean cluster count exactly (enumeration over all
query placements) for any :class:`repro.sfc.SpaceFillingCurve`, plus the
known asymptote for the Hilbert curve: for a d-dimensional box query the
average number of clusters approaches ``surface_area / (2d)`` — for a 2-d
``q x q`` query, exactly ``q`` (Moon, Jagadish, Faloutsos & Saltz's later
closed-form analysis).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.sfc.base import SpaceFillingCurve

__all__ = ["mean_clusters", "clusters_of", "hilbert_cluster_asymptote"]


def clusters_of(keys: np.ndarray) -> int:
    """Number of maximal runs of consecutive values in a key set."""
    keys = np.sort(np.asarray(keys, dtype=np.int64))
    if keys.size == 0:
        return 0
    return 1 + int((np.diff(keys) > 1).sum())


def mean_clusters(curve: SpaceFillingCurve, query_shape, grid_side: "int | None" = None) -> float:
    """Exact mean cluster count of a box query over all grid placements.

    Parameters
    ----------
    curve:
        Any space-filling curve instance.
    query_shape:
        Query side lengths in cells, one per curve dimension.
    grid_side:
        Grid extent per dimension (defaults to the curve's full ``2**bits``).

    Notes
    -----
    Cost is ``O(placements * query_volume)`` — intended for the analysis
    regime (grids up to ~64 per side).
    """
    query_shape = tuple(check_positive_int(q, "query side") for q in query_shape)
    if len(query_shape) != curve.dims:
        raise ValueError(f"query must have {curve.dims} sides")
    n = grid_side if grid_side is not None else (1 << curve.bits)
    check_positive_int(n, "grid_side")
    if n > (1 << curve.bits):
        raise ValueError("grid_side exceeds the curve's addressable extent")
    if any(q > n for q in query_shape):
        raise ValueError("query larger than the grid")

    offsets_axes = [np.arange(q) for q in query_shape]
    mesh = np.meshgrid(*offsets_axes, indexing="ij")
    offsets = np.stack([m.ravel() for m in mesh], axis=1)

    place_axes = [np.arange(n - q + 1) for q in query_shape]
    mesh = np.meshgrid(*place_axes, indexing="ij")
    placements = np.stack([m.ravel() for m in mesh], axis=1)

    total = 0
    for origin in placements:
        keys = curve.index(origin[None, :] + offsets)
        total += clusters_of(keys)
    return total / placements.shape[0]


def hilbert_cluster_asymptote(query_shape) -> float:
    """Asymptotic mean cluster count of the Hilbert curve for a box query.

    ``surface_area / (2d)``: for a 2-d ``q1 x q2`` box this is
    ``(q1 + q2) / 2`` (so ``q`` for a square), for a 3-d box
    ``(q1·q2 + q1·q3 + q2·q3) / 3``.
    """
    q = [check_positive_int(s, "query side") for s in query_shape]
    d = len(q)
    if d == 0:
        raise ValueError("query_shape must be non-empty")
    total = np.prod(q)
    surface = sum(2 * total // s for s in q)
    return float(surface) / (2 * d)
