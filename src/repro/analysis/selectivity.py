"""Analytic query selectivity: expected buckets touched per query.

For the paper's workload (square queries with uniform centers, clipped to
the domain) the probability that a query of side ``l_k`` intersects a
bucket whose region is ``[a_k, b_k]`` has a closed form: the query center
must fall in ``[a_k - l_k/2, b_k + l_k/2]`` intersected with the domain, so

    P(intersect) = Π_k  ( min(b_k + l_k/2, L_k) - max(a_k - l_k/2, 0) ) / L_k

and the expected number of buckets a query touches is the sum of these
probabilities over the (non-empty) buckets.  Dividing by M and flooring at
1 approximates the optimal response curve without running a single query —
the analytic counterpart of the "Optimal" line in every figure.

Accuracy note: clipping correlates the query's side length with its
position near the boundary; the closed form above treats the box as
centered before clipping, which matches the generator in
:func:`repro.sim.workload.square_queries` exactly (it clips the same way).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int, check_probability
from repro.gridfile.gridfile import GridFile

__all__ = ["intersect_probabilities", "expected_buckets_touched", "predicted_optimal_response"]


def intersect_probabilities(gf: GridFile, ratio: float) -> np.ndarray:
    """Per-bucket probability that a random square query intersects it.

    Parameters
    ----------
    gf:
        The grid file.
    ratio:
        Query volume fraction r (side ``r**(1/d) · L_k``).

    Returns
    -------
    numpy.ndarray
        ``(n_buckets,)`` probabilities (empty buckets get probability 0 —
        they own no disk page).
    """
    check_probability(ratio, "ratio")
    if ratio == 0.0:
        raise ValueError("ratio must be positive")
    lo, hi = gf.bucket_regions()
    lengths = gf.scales.lengths
    half = (ratio ** (1.0 / gf.dims)) * lengths / 2.0
    dom_lo = gf.scales.domain_lo
    dom_hi = gf.scales.domain_hi
    upper = np.minimum(hi + half, dom_hi)
    lower = np.maximum(lo - half, dom_lo)
    per_dim = np.clip(upper - lower, 0.0, None) / lengths
    p = np.prod(per_dim, axis=1)
    p[gf.bucket_sizes() == 0] = 0.0
    return p


def expected_buckets_touched(gf: GridFile, ratio: float) -> float:
    """Expected number of (non-empty) buckets a random square query touches."""
    return float(intersect_probabilities(gf, ratio).sum())


def predicted_optimal_response(gf: GridFile, ratio: float, n_disks: int) -> float:
    """Analytic approximation of the optimal response curve.

    ``max(1, E[buckets] / M)`` — the continuous relaxation of the mean
    ``⌈buckets/M⌉``; exact in the many-buckets regime, a slight
    underestimate near the floor (Jensen).
    """
    check_positive_int(n_disks, "n_disks")
    e = expected_buckets_touched(gf, ratio)
    return max(1.0, e / n_disks) if e > 0 else 0.0
