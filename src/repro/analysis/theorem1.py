"""Theorem 1: disk modulo on 2-d square range queries.

For an ``l x l`` square range query on a 2-d Cartesian product file with
``M`` disks and ``β = l mod M``:

* (i)  DM is strictly optimal **iff** ``M < l ∧ (β = 0 ∨ β > M(1 - 1/β))``
  (plus the trivial boundary cases with ``M >= l`` where ``R_opt`` happens to
  equal ``l`` — see :func:`dm_is_strictly_optimal` for the exact predicate);
* (ii) the closed form::

        R_DM(M) = R_opt(M) + β - ⌈β²/M⌉    if M <= l ∧ β != 0 ∧ β <= M(1-1/β)
        R_DM(M) = R_opt(M)                 if M <= l and otherwise
        R_DM(M) = l                        if M > l

  with ``R_opt(M) = ⌈l²/M⌉``.

The second clause of (ii) — ``R_DM = l`` whenever ``M > l`` — is the paper's
scalability result for DM: for a fixed query, adding disks beyond the query
side length buys nothing.  Both clauses are certified against brute force in
``tests/test_theorem1.py`` over a dense (l, M) grid.
"""

from __future__ import annotations

from math import ceil

from repro._util import check_positive_int
from repro.analysis.bruteforce import dm_response_exact

__all__ = [
    "dm_response_formula",
    "dm_optimality_condition",
    "dm_is_strictly_optimal",
    "dm_optimal_response",
]


def dm_optimal_response(l: int, n_disks: int) -> int:
    """``R_opt(M) = ⌈l²/M⌉`` for an l x l query."""
    check_positive_int(l, "l")
    check_positive_int(n_disks, "n_disks")
    return ceil(l * l / n_disks)


def dm_response_formula(l: int, n_disks: int) -> int:
    """Theorem 1(ii): closed-form DM response time for an l x l query."""
    check_positive_int(l, "l")
    m = check_positive_int(n_disks, "n_disks")
    if m > l:
        return l
    beta = l % m
    r_opt = dm_optimal_response(l, m)
    if beta == 0 or beta > m * (1.0 - 1.0 / beta):
        return r_opt
    return r_opt + beta - ceil(beta * beta / m)


def dm_optimality_condition(l: int, n_disks: int) -> bool:
    """The paper's Theorem 1(i) predicate, verbatim.

    ``M < l ∧ (β = 0 ∨ β > M(1 - 1/β))``.  Exact for ``M < l``; for
    ``M >= l`` it returns False even in the boundary cases where DM happens
    to be optimal (e.g. ``M = l``) — use :func:`dm_is_strictly_optimal` for
    the exact predicate on all inputs.
    """
    check_positive_int(l, "l")
    m = check_positive_int(n_disks, "n_disks")
    if m >= l:
        return False
    beta = l % m
    return beta == 0 or beta > m * (1.0 - 1.0 / beta)


def dm_is_strictly_optimal(l: int, n_disks: int) -> bool:
    """Exact strict-optimality predicate: ``R_DM == R_opt`` (brute force)."""
    return dm_response_exact(l, n_disks) == dm_optimal_response(l, n_disks)


def dm_response_exact_box(shape, n_disks: int) -> int:
    """Exact DM response for a d-dimensional box query (any side lengths).

    Generalizes :func:`repro.analysis.bruteforce.dm_response_exact` beyond
    2-d squares: the count of cells with ``Σ i_k ≡ r (mod M)`` inside a box
    is the d-fold convolution of uniform indicators folded mod M — position
    independent, like the 2-d case.  Cost ``O(Σ l_k · M)`` instead of the
    ``O(Π l_k)`` enumeration, so high-dimensional boxes stay cheap.

    Parameters
    ----------
    shape:
        Query side lengths in cells, one per dimension.
    n_disks:
        Number of disks M.
    """
    import numpy as np

    m = check_positive_int(n_disks, "n_disks")
    shape = [check_positive_int(s, "side") for s in shape]
    counts = np.zeros(m, dtype=np.int64)
    counts[0] = 1
    for l in shape:
        contrib = np.bincount(np.arange(l) % m, minlength=m)
        # Cyclic convolution of the residue distributions.
        new = np.zeros(m, dtype=np.int64)
        for r in range(m):
            if counts[r]:
                new += counts[r] * np.roll(contrib, r)
        counts = new
    return int(counts.max())
