"""Partial-match optimality of the index-based schemes (paper §2 background).

The paper motivates DM and FX by their partial-match guarantees:

* Du & Sobolewski: DM is strictly optimal for *all* partial-match queries
  with exactly one unspecified attribute (and for many other classes);
* Kim & Pramanik: with power-of-two disks and field sizes, the set of
  partial-match queries for which FX is strictly optimal is a superset of
  DM's.

This module evaluates partial-match response times exactly on Cartesian
product files, so both claims are checked mechanically
(``tests/test_partialmatch.py``, ``benchmarks/bench_ext_partialmatch.py``)
and can be contrasted with the *range-query* behaviour where both schemes
stall — the tension at the heart of the paper.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro._util import check_positive_int

__all__ = [
    "partial_match_response",
    "optimal_partial_match_response",
    "strictly_optimal_queries",
]


def partial_match_response(cell_disk_fn, shape, spec: dict[int, int], n_disks: int) -> int:
    """Exact response time of one partial-match query on a CPF.

    Parameters
    ----------
    cell_disk_fn:
        ``(n, d) cells -> (n,) disks`` mapping (pre-modulo values allowed).
    shape:
        Grid shape (cells per dimension).
    spec:
        Pinned attributes: dimension -> cell index.  Unspecified dimensions
        range over the whole axis; at least one must remain unspecified.
    n_disks:
        Number of disks M.
    """
    check_positive_int(n_disks, "n_disks")
    d = len(shape)
    if len(spec) >= d:
        raise ValueError("a partial-match query needs >= 1 unspecified attribute")
    for k, v in spec.items():
        if not 0 <= k < d:
            raise ValueError(f"dimension {k} out of range")
        if not 0 <= v < shape[k]:
            raise ValueError(f"value {v} out of range for dimension {k}")
    axes = [
        np.array([spec[k]]) if k in spec else np.arange(shape[k]) for k in range(d)
    ]
    mesh = np.meshgrid(*axes, indexing="ij")
    cells = np.stack([m.ravel() for m in mesh], axis=1)
    disks = np.asarray(cell_disk_fn(cells)) % n_disks
    return int(np.bincount(disks, minlength=n_disks).max())


def optimal_partial_match_response(shape, spec: dict[int, int], n_disks: int) -> int:
    """``⌈(number of matching cells) / M⌉``."""
    d = len(shape)
    n_cells = 1
    for k in range(d):
        if k not in spec:
            n_cells *= shape[k]
    return -(-n_cells // n_disks)


def strictly_optimal_queries(
    cell_disk_fn, shape, n_disks: int, n_unspecified: int
) -> tuple[int, int]:
    """Count strictly optimal partial-match queries with a given shape.

    Enumerates every query with exactly ``n_unspecified`` free attributes
    and returns ``(optimal_count, total_count)``.
    """
    d = len(shape)
    check_positive_int(n_unspecified, "n_unspecified")
    if n_unspecified > d:
        raise ValueError("more unspecified attributes than dimensions")
    from itertools import combinations

    optimal = total = 0
    for free in combinations(range(d), n_unspecified):
        pinned = [k for k in range(d) if k not in free]
        for values in product(*(range(shape[k]) for k in pinned)):
            spec = dict(zip(pinned, values))
            total += 1
            r = partial_match_response(cell_disk_fn, shape, spec, n_disks)
            if r == optimal_partial_match_response(shape, spec, n_disks):
                optimal += 1
    return optimal, total
