"""Theorem 2: fieldwise XOR on power-of-two square queries.

For a ``2^m x 2^m`` square range query on ``M = 2^n`` disks:

* (i)   ``R_FX(2^n) = 2^(m + (m-n))`` for ``n <= m`` — exact, position
  independent, and equal to the optimum ``(2^m)² / 2^n`` (FX is strictly
  optimal below the threshold);
* (ii)  ``2^(m-(n-m)) <= R_FX(2^n) <= 2^m`` for ``n > m`` — above the
  threshold the response is squeezed between a slowly decaying lower bound
  and the constant ``2^m``;
* (iii) ``R_FX(2^(n+1)) >= (3/4) · R_FX(2^n)`` for ``n > m`` — doubling the
  disks reduces expected response by at most 25%, far from the ideal halving.

``R_FX`` denotes the response *expected over query positions* (unlike DM,
FX's response depends on where the query lands).  All three properties are
certified against brute force in ``tests/test_theorem2.py``.
"""

from __future__ import annotations

from repro.analysis.bruteforce import fx_response_positions

__all__ = ["fx_expected_response", "fx_response_formula", "fx_response_bounds"]


def fx_expected_response(m: int, n: int) -> float:
    """Exact expected FX response of a 2^m x 2^m query on 2^n disks.

    Brute force over the full positional period; cost ``O(4^max(m,n) · 4^m)``
    — fine for the theorem's regime (m, n <= ~5).
    """
    if m < 0 or n < 0:
        raise ValueError("m and n must be non-negative")
    return float(fx_response_positions(m, n).mean())


def fx_response_formula(m: int, n: int) -> "int | None":
    """Theorem 2(i): the exact closed form, or None when it does not apply.

    Returns ``2^(m + (m - n))`` for ``n <= m``; above the threshold (n > m)
    only the bounds of :func:`fx_response_bounds` hold.
    """
    if m < 0 or n < 0:
        raise ValueError("m and n must be non-negative")
    if n > m:
        return None
    return 1 << (m + (m - n))


def fx_response_bounds(m: int, n: int) -> tuple[float, float]:
    """Theorem 2(ii): ``(2^(m-(n-m)), 2^m)`` bounds for ``n > m``."""
    if n <= m:
        v = float(fx_response_formula(m, n))
        return v, v
    return float(2.0 ** (m - (n - m))), float(1 << m)
