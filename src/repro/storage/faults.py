"""Fault injection for files: killed writes, dropped fsyncs, bit flips.

:class:`FaultyFile` is a drop-in file object (pass a factory as the
``file_factory`` of :class:`~repro.storage.blockstore.FileBlockStore` /
:class:`~repro.storage.wal.WriteAheadLog`) that routes every mutating
operation through a shared :class:`CrashClock`.  The clock counts
operations **across all files it is attached to**, so "crash at
operation N of the workload" has one global meaning even though the WAL
and the page device are separate files.

Two crash models:

* **process kill** (default): the crash stops the process between or in
  the middle of operations; bytes already handed to the OS survive (the
  files are opened unbuffered, so a half-finished write really is on
  "disk" as a torn page).
* **power loss** (``lose_unsynced=True``): at the crash instant the file
  reverts to its state as of the last successful ``sync`` — every
  unsynced write and truncate is lost.

Orthogonal corruptions:

* ``drop_sync=True`` — a lying drive: ``sync`` returns success without
  making anything durable (combined with ``lose_unsynced`` the snapshot
  is simply never advanced);
* ``flip_bits`` — silent media corruption: ``{op_index: (offset, mask)}``
  XORs a byte of that write's data on its way to the file (no crash; the
  page CRC must catch it later).

After the clock has fired, **every** further operation on any attached
file raises :class:`InjectedCrash` — the process is dead.
"""

from __future__ import annotations

import os

__all__ = ["CrashClock", "FaultyFile", "InjectedCrash"]


class InjectedCrash(RuntimeError):
    """The fault injector killed the simulated process."""


class CrashClock:
    """Global operation counter deciding when the simulated process dies.

    Parameters
    ----------
    crash_op:
        Operation index at which to crash (``None``: never — used for the
        counting run that enumerates a workload's write boundaries).
    phase:
        ``"before"`` — die at the start of operation ``crash_op`` (nothing
        of it reaches the file); ``"mid"`` — for a write of at least two
        bytes, put half of the data in the file, then die (a torn write).

    Attributes
    ----------
    ops:
        ``(kind, size)`` of every operation observed, in order — the
        counting run reads this to enumerate crash boundaries.
    """

    def __init__(self, crash_op=None, phase: str = "before"):
        if phase not in ("before", "mid"):
            raise ValueError(f"unknown crash phase {phase!r}")
        self.crash_op = crash_op
        self.phase = phase
        self.op_count = 0
        self.crashed = False
        self.ops: list[tuple[str, int]] = []
        #: Every FaultyFile attached to this clock (so a harness can close
        #: the real file handles of a "dead" process).
        self.files: list = []
        self._on_crash: list = []

    def add_crash_callback(self, callback) -> None:
        """Run ``callback`` at the crash instant (power-loss rollback)."""
        self._on_crash.append(callback)

    def crash(self, message: str) -> None:
        """Kill the process now (fires callbacks, raises InjectedCrash)."""
        self.crashed = True
        for callback in self._on_crash:
            callback()
        raise InjectedCrash(message)

    def tick(self, kind: str, size: int = 0) -> tuple[int, int]:
        """Account one operation; returns ``(op_index, bytes_allowed)``.

        ``bytes_allowed < size`` means: write that prefix, then call
        :meth:`crash` (the mid-write torn page).
        """
        if self.crashed:
            raise InjectedCrash("operation on a dead process")
        op = self.op_count
        self.op_count += 1
        self.ops.append((kind, size))
        if self.crash_op is not None and op == self.crash_op:
            if self.phase == "mid" and kind == "write" and size >= 2:
                return op, size // 2
            self.crash(f"injected crash before op {op} ({kind})")
        return op, size


class FaultyFile:
    """An unbuffered binary file with crash/corruption injection.

    Matches the ``file_factory(path, mode)`` protocol of the storage
    layer and exposes the subset of the file API it uses (``seek`` /
    ``read`` / ``write`` / ``truncate`` / ``tell`` / ``flush`` /
    ``close``) plus ``sync`` — which the storage layer calls *instead of*
    ``os.fsync`` whenever the attribute exists.
    """

    def __init__(
        self,
        path,
        mode: str = "r+b",
        clock: "CrashClock | None" = None,
        lose_unsynced: bool = False,
        drop_sync: bool = False,
        flip_bits: "dict | None" = None,
    ):
        self._f = open(path, mode, buffering=0)
        self.clock = clock
        self.lose_unsynced = lose_unsynced
        self.drop_sync = drop_sync
        self.flip_bits = dict(flip_bits) if flip_bits else {}
        if clock is not None:
            clock.files.append(self)
        if lose_unsynced:
            self._snapshot = self._content()
            if clock is not None:
                clock.add_crash_callback(self._rollback)

    # --------------------------------------------------------- power loss

    def _content(self) -> bytes:
        pos = self._f.tell()
        self._f.seek(0)
        data = self._f.read()
        self._f.seek(pos)
        return data

    def _rollback(self) -> None:
        self._f.seek(0)
        self._f.write(self._snapshot)
        self._f.truncate(len(self._snapshot))

    # ----------------------------------------------------------- file API

    def _check_dead(self) -> None:
        if self.clock is not None and self.clock.crashed:
            raise InjectedCrash("operation on a dead process")

    def write(self, data) -> int:
        data = bytes(data)
        if self.clock is None:
            return self._f.write(data)
        op, allowed = self.clock.tick("write", len(data))
        if op in self.flip_bits:
            offset, mask = self.flip_bits[op]
            corrupted = bytearray(data)
            corrupted[offset % max(len(data), 1)] ^= mask
            data = bytes(corrupted)
        if allowed < len(data):
            self._f.write(data[:allowed])
            self.clock.crash(f"injected crash mid-write at op {op}")
        return self._f.write(data)

    def truncate(self, size=None) -> int:
        if self.clock is not None:
            self.clock.tick("truncate")
        return self._f.truncate(self._f.tell() if size is None else size)

    def sync(self) -> None:
        """Durability point (the storage layer calls this instead of fsync)."""
        if self.clock is not None:
            self.clock.tick("sync")
        if self.drop_sync:
            return
        os.fsync(self._f.fileno())
        if self.lose_unsynced:
            self._snapshot = self._content()

    def read(self, size: int = -1) -> bytes:
        self._check_dead()
        return self._f.read(size)

    def seek(self, offset: int, whence: int = 0) -> int:
        self._check_dead()
        return self._f.seek(offset, whence)

    def tell(self) -> int:
        return self._f.tell()

    def flush(self) -> None:
        self._check_dead()

    def fileno(self) -> int:
        return self._f.fileno()

    def close(self) -> None:
        self._f.close()
