"""Durable grid files: a GridFile paged onto a transactional StorageEngine.

:class:`DurableGridFile` keeps a live in-memory
:class:`~repro.gridfile.GridFile` (all queries stay vectorized and
unchanged) and mirrors its state onto engine pages:

* each bucket serialises to a small binary blob — record ids plus their
  coordinates — chunked across one or more pages;
* a JSON **catalog** blob holds everything else needed to rebuild the
  grid file (scales, directory, cell boxes, deleted set, split cursor)
  plus the page list of every bucket blob;
* the engine's root blob points at the catalog pages.

The class subscribes to the grid file's structural listener events
(:meth:`GridFile.add_listener`), so splits, merges, bucket removals and
refinements mark exactly the right pages dirty.  :meth:`commit_op`
flushes everything dirtied since the last call as **one** engine
transaction — the natural unit is one logical operation (one insert or
delete, including any restructuring it triggered), which makes recovery
land precisely on an operation boundary.

Determinism: page allocation, blob bytes and the catalog JSON are all
deterministic functions of the operation sequence, so a crashed store
that is recovered and replayed to the same operation count is
byte-identical to a never-crashed one (the crash-injection harness in
:mod:`repro.storage.harness` asserts exactly this).
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.gridfile.bucket import Bucket
from repro.gridfile.directory import Directory
from repro.gridfile.gridfile import GridFile
from repro.gridfile.regions import CellBox
from repro.gridfile.scales import Scales
from repro.storage.engine import StorageEngine
from repro.storage.page import HEADER_SIZE, StorageError

__all__ = ["DurableGridFile"]

_BUCKET_HEADER = "<III"  # bucket id, n_records, dims
_BUCKET_HEADER_SIZE = struct.calcsize(_BUCKET_HEADER)


def _bucket_blob(gf: GridFile, bucket: Bucket) -> bytes:
    rec = bucket.record_array()
    coords = gf.points[rec] if rec.size else np.empty((0, gf.dims))
    return (
        struct.pack(_BUCKET_HEADER, bucket.id, rec.size, gf.dims)
        + rec.astype("<i8").tobytes()
        + coords.astype("<f8").tobytes()
    )


def _parse_bucket_blob(blob: bytes, expected_bid: int, dims: int):
    if len(blob) < _BUCKET_HEADER_SIZE:
        raise StorageError(f"bucket {expected_bid}: blob too short ({len(blob)} bytes)")
    bid, n_rec, d = struct.unpack_from(_BUCKET_HEADER, blob)
    if bid != expected_bid or d != dims:
        raise StorageError(
            f"bucket {expected_bid}: blob header mismatch (id={bid}, dims={d})"
        )
    off = _BUCKET_HEADER_SIZE
    rids = np.frombuffer(blob, dtype="<i8", count=n_rec, offset=off)
    off += 8 * n_rec
    coords = np.frombuffer(blob, dtype="<f8", count=n_rec * d, offset=off)
    return rids.astype(np.int64), coords.reshape(n_rec, d).astype(np.float64)


class DurableGridFile:
    """A grid file whose every committed operation survives a crash.

    Build one with :meth:`create` (wrap a fresh in-memory grid file) or
    :meth:`open` (rebuild from disk, running crash recovery first).  The
    live grid file is ``self.gf``; mutate it directly (or via
    :meth:`insert` / :meth:`delete`) and call :meth:`commit_op` at each
    operation boundary.
    """

    def __init__(self, gf: GridFile, engine: StorageEngine, catalog_pages, bucket_pages):
        self.gf = gf
        self.engine = engine
        self._catalog_pages: list[int] = list(catalog_pages)
        self._bucket_pages: dict[int, list[int]] = {
            int(b): list(p) for b, p in bucket_pages.items()
        }
        self._dirty: set[int] = set()
        self._freed: list[int] = []
        self._pending = False
        gf.add_listener(self)

    # ----------------------------------------------------------- lifecycle

    @classmethod
    def create(cls, gf: GridFile, directory, **engine_kwargs) -> "DurableGridFile":
        """Persist ``gf`` into a freshly created store (full snapshot)."""
        engine = StorageEngine.create(directory, **engine_kwargs)
        d = cls(gf, engine, [], {})
        d._dirty.update(range(gf.n_buckets))
        d._pending = True
        d.commit_op()
        return d

    @classmethod
    def open(cls, directory, recover: bool = True, **engine_kwargs) -> "DurableGridFile":
        """Rebuild the grid file from disk (crash recovery runs first)."""
        engine = StorageEngine.open(directory, recover=recover, **engine_kwargs)
        try:
            root = json.loads(engine.root.decode("ascii"))
            catalog_pages = [int(p) for p in root["catalog_pages"]]
        except (ValueError, KeyError) as exc:
            engine.close()
            raise StorageError(f"store root does not name a catalog: {exc}") from None
        blob = b"".join(engine.read(p) for p in catalog_pages)
        cat = json.loads(blob.decode("ascii"))
        scales = Scales(
            np.array(cat["domain_lo"]),
            np.array(cat["domain_hi"]),
            [np.array(b, dtype=np.float64) for b in cat["boundaries"]],
        )
        grid = np.array(cat["directory"], dtype=np.int64).reshape(cat["directory_shape"])
        directory_obj = Directory.from_array(grid)
        dims = scales.dims
        n = int(cat["n"])
        points = np.zeros((n, dims), dtype=np.float64)
        buckets = []
        bucket_pages = {}
        for bid, entry in enumerate(cat["buckets"]):
            pages = [int(p) for p in entry["pages"]]
            rids, coords = _parse_bucket_blob(
                b"".join(engine.read(p) for p in pages), bid, dims
            )
            box = CellBox(
                np.array(entry["lo"], dtype=np.int64), np.array(entry["hi"], dtype=np.int64)
            )
            bucket = Bucket(bid, box, rids.tolist())
            bucket.overflowed = bool(entry["overflowed"])
            buckets.append(bucket)
            bucket_pages[bid] = pages
            if rids.size:
                points[rids] = coords
        gf = GridFile(
            scales, directory_obj, buckets, points, cat["capacity"], cat["split_policy"]
        )
        gf._deleted = set(int(r) for r in cat["deleted"])
        gf._next_split_dim = int(cat["next_split_dim"])
        gf.merge_trigger = float(cat["merge_trigger"])
        gf.merge_fill = float(cat["merge_fill"])
        return cls(gf, engine, catalog_pages, bucket_pages)

    def close(self) -> None:
        """Detach from the grid file and close the engine."""
        self.gf.remove_listener(self)
        self.engine.close()

    def checkpoint(self) -> None:
        """fsync the device and truncate the WAL (engine checkpoint)."""
        self.engine.checkpoint()

    # ------------------------------------------------------ listener events

    def on_record(self, gf, bucket_id, kind) -> None:
        self._dirty.add(bucket_id)
        self._pending = True

    def on_split(self, gf, bucket_id, new_bucket_id) -> None:
        self._dirty.add(bucket_id)
        self._dirty.add(new_bucket_id)
        self._pending = True

    def on_merge(self, gf, survivor_id, absorbed_id) -> None:
        self._dirty.add(survivor_id)
        self._pending = True

    def on_remove(self, gf, bucket_id, moved_id) -> None:
        self._freed.extend(self._bucket_pages.pop(bucket_id, []))
        self._dirty.discard(bucket_id)
        if moved_id is not None:
            # The last bucket was renumbered into the freed slot; its blob
            # encodes the bucket id, so it must be rewritten either way.
            self._bucket_pages[bucket_id] = self._bucket_pages.pop(moved_id, [])
            self._dirty.discard(moved_id)
            self._dirty.add(bucket_id)
        self._pending = True

    def on_refine(self, gf, dim, interval) -> None:
        # Scales, directory and every cell box live in the catalog, which
        # is rewritten on every commit anyway.
        self._pending = True

    # ------------------------------------------------------------- commits

    def _chunks(self, blob: bytes) -> list[bytes]:
        cap = self.engine.page_size - HEADER_SIZE
        return [blob[i : i + cap] for i in range(0, len(blob), cap)] or [b""]

    def _write_blob(self, blob: bytes, old_pages: list) -> list:
        """Stage ``blob`` over pages, reusing ``old_pages`` prefix-first."""
        chunks = self._chunks(blob)
        pages = list(old_pages[: len(chunks)])
        while len(pages) < len(chunks):
            pages.append(self.engine.alloc())
        for pid in old_pages[len(chunks) :]:
            self.engine.release(pid)
        for pid, chunk in zip(pages, chunks):
            self.engine.put(pid, chunk)
        return pages

    def _catalog_blob(self) -> bytes:
        gf = self.gf
        cat = {
            "capacity": gf.capacity,
            "split_policy": gf.split_policy,
            "merge_trigger": gf.merge_trigger,
            "merge_fill": gf.merge_fill,
            "n": gf._n,
            "next_split_dim": gf._next_split_dim,
            "deleted": sorted(int(r) for r in gf._deleted),
            "domain_lo": gf.scales.domain_lo.tolist(),
            "domain_hi": gf.scales.domain_hi.tolist(),
            "boundaries": [b.tolist() for b in gf.scales.boundaries],
            "directory_shape": list(gf.directory.shape),
            "directory": gf.directory.grid.ravel().tolist(),
            "buckets": [
                {
                    "lo": b.cellbox.lo.tolist(),
                    "hi": b.cellbox.hi.tolist(),
                    "overflowed": b.overflowed,
                    "pages": self._bucket_pages.get(b.id, []),
                }
                for b in gf.buckets
            ],
        }
        return json.dumps(cat, sort_keys=True, separators=(",", ":")).encode("ascii")

    def commit_op(self) -> "int | None":
        """Commit everything dirtied since the last call as one transaction.

        Returns the txid, or ``None`` when nothing changed.
        """
        if not self._pending:
            return None
        self.engine.begin()
        for pid in self._freed:
            self.engine.release(pid)
        for bid in sorted(b for b in self._dirty if b < self.gf.n_buckets):
            blob = _bucket_blob(self.gf, self.gf.buckets[bid])
            self._bucket_pages[bid] = self._write_blob(
                blob, self._bucket_pages.get(bid, [])
            )
        self._catalog_pages = self._write_blob(self._catalog_blob(), self._catalog_pages)
        self.engine.set_root(
            json.dumps({"catalog_pages": self._catalog_pages}).encode("ascii")
        )
        txid = self.engine.commit()
        self._dirty.clear()
        self._freed.clear()
        self._pending = False
        return txid

    # -------------------------------------------------------- conveniences

    def insert(self, coords) -> int:
        """Insert a point and commit the operation; returns the record id."""
        rid = self.gf.insert_point(coords)
        self.commit_op()
        return rid

    def delete(self, rid: int) -> None:
        """Delete a record and commit the operation."""
        self.gf.delete_record(rid)
        self.commit_op()

    def apply(self, op) -> None:
        """Apply one ``("insert", coords)`` / ``("delete", rid)`` op and commit."""
        kind, arg = op
        if kind == "insert":
            self.insert(arg)
        elif kind == "delete":
            self.delete(int(arg))
        else:
            raise ValueError(f"unknown op kind {kind!r}")
