"""Transactional storage engine: meta page + allocator + WAL over a device.

A :class:`StorageEngine` owns two files inside one directory::

    <dir>/pages.dat   the page device (any BlockStore backend)
    <dir>/wal.log     the write-ahead log (unless durability is "off")

Page 0 is the **meta page**; its payload carries the commit sequence
number, an opaque *root* blob (the client's catalog pointer) and the
serialised :class:`~repro.storage.allocator.PageAllocator`.  All client
state is therefore reachable from page 0, and because the meta page is
written inside every transaction, a commit atomically publishes the new
root, the new allocator and every page image at once.

Commit protocol (durability ``"commit"``, the default)::

    begin()                 txid = commit_seq + 1
    put()/alloc()/release() stage work (nothing touches the device)
    commit():
        1. frame every staged page (and the meta page) with lsn = txid
        2. append all images + a COMMIT record to the WAL, fsync
        3. apply the images to the device (no fsync — the WAL covers them)

The device is fsynced only at :meth:`checkpoint`, which then truncates
the WAL.  :meth:`recover` replays the WAL's committed redo set, rewrites
any device page that differs (torn, bit-flipped or stale), fsyncs and
checkpoints — after which the engine is exactly at the last committed
transaction, no matter where a crash hit.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import GLOBAL_METRICS
from repro.storage.allocator import PageAllocator
from repro.storage.blockstore import make_block_store
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    HEADER_SIZE,
    PageCorruptionError,
    StorageError,
    hexdump,
    pack_page,
    unpack_page,
)
from repro.storage.wal import WriteAheadLog

__all__ = [
    "DATA_FILE",
    "DURABILITY_MODES",
    "META_PAGE",
    "WAL_FILE",
    "FsckReport",
    "RecoveryReport",
    "StorageEngine",
]

DATA_FILE = "pages.dat"
WAL_FILE = "wal.log"
META_PAGE = 0

#: ``commit``: fsync the WAL on every commit (crash-safe, the default).
#: ``checkpoint``: WAL kept but fsynced only at checkpoints (a crash may
#: roll back to the last checkpoint, never to an inconsistent state).
#: ``off``: no WAL at all (fastest; a crash mid-commit can corrupt pages).
DURABILITY_MODES = ("commit", "checkpoint", "off")

_META_PREFIX = "<QI"  # commit_seq, root length
_META_PREFIX_SIZE = struct.calcsize(_META_PREFIX)


@dataclass
class RecoveryReport:
    """What :meth:`StorageEngine.recover` found and repaired."""

    last_txid: int = 0
    wal_records: int = 0
    #: Device pages rewritten because they failed verification.
    pages_torn: int = 0
    #: Device pages rewritten because they held an older committed image.
    pages_stale: int = 0
    torn_tail: bool = False

    @property
    def pages_restored(self) -> int:
        """Total device pages rewritten from the WAL."""
        return self.pages_torn + self.pages_stale


@dataclass
class FsckReport:
    """Result of :meth:`StorageEngine.fsck`."""

    ok: bool = True
    pages_checked: int = 0
    pages_repaired: int = 0
    problems: list = field(default_factory=list)
    #: ``page_id -> hexdump`` of each corrupt page (artifact material).
    dumps: dict = field(default_factory=dict)


class StorageEngine:
    """Single-writer transactional page storage (see module docstring).

    Use :meth:`create` for a fresh store and :meth:`open` for an existing
    one — the bare constructor is shared plumbing.
    """

    def __init__(
        self,
        directory,
        backend: str = "file",
        page_size: int = DEFAULT_PAGE_SIZE,
        durability: str = "commit",
        file_factory=None,
        metrics=None,
    ):
        if durability not in DURABILITY_MODES:
            raise StorageError(
                f"unknown durability {durability!r} (choose from {DURABILITY_MODES})"
            )
        self.directory = Path(directory)
        self.backend = backend
        self.page_size = int(page_size)
        self.durability = durability
        self.metrics = metrics if metrics is not None else GLOBAL_METRICS
        self._file_factory = file_factory
        if backend == "memory":
            self.store = make_block_store("memory", page_size=page_size)
        else:
            self.directory.mkdir(parents=True, exist_ok=True)
            kwargs = {}
            if backend == "file" and file_factory is not None:
                kwargs["file_factory"] = file_factory
            self.store = make_block_store(
                backend, self.directory / DATA_FILE, page_size=page_size, **kwargs
            )
        self.wal = None
        if durability != "off" and backend != "memory":
            self.wal = WriteAheadLog(
                self.directory / WAL_FILE,
                sync_on_commit=(durability == "commit"),
                file_factory=file_factory,
                metrics=self.metrics,
            )
        self.commit_seq = 0
        self.root = b""
        self.allocator = PageAllocator()
        self._tx: "dict[int, bytes] | None" = None
        self._tx_root: "bytes | None" = None
        self._tx_alloc_backup = b""
        #: :class:`RecoveryReport` of the most recent :meth:`recover` run.
        self.last_recovery: "RecoveryReport | None" = None

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def create(cls, directory, **kwargs) -> "StorageEngine":
        """Initialise a fresh store (commits the empty meta page as txid 1)."""
        if kwargs.get("backend", "file") != "memory" and (
            Path(directory) / DATA_FILE
        ).exists():
            raise StorageError(f"refusing to create over existing store in {directory}")
        eng = cls(directory, **kwargs)
        eng.begin()
        eng.commit()
        return eng

    @classmethod
    def open(cls, directory, recover: bool = True, **kwargs) -> "StorageEngine":
        """Open an existing store, running crash :meth:`recover` by default."""
        eng = cls(directory, **kwargs)
        if recover:
            eng.recover()
        else:
            eng._load_meta()
        return eng

    def close(self) -> None:
        """Close the device and the WAL (no implicit checkpoint)."""
        if self.wal is not None:
            self.wal.close()
        self.store.close()

    def __enter__(self) -> "StorageEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------- meta page

    def _meta_payload(self, commit_seq: int, root: bytes) -> bytes:
        blob = struct.pack(_META_PREFIX, commit_seq, len(root)) + root
        blob += self.allocator.to_bytes()
        if len(blob) > self.page_size - HEADER_SIZE:
            raise StorageError(
                f"meta payload of {len(blob)} bytes exceeds page capacity; "
                f"raise page_size above {len(blob) + HEADER_SIZE}"
            )
        return blob

    def _load_meta(self) -> None:
        buf = self.store.read_page(META_PAGE)
        try:
            _, payload = unpack_page(buf, META_PAGE)
        except PageCorruptionError as exc:
            raise StorageError(
                f"meta page unreadable ({exc.reason}); store is empty or needs recovery"
            ) from exc
        commit_seq, root_len = struct.unpack_from(_META_PREFIX, payload)
        root_end = _META_PREFIX_SIZE + root_len
        self.commit_seq = commit_seq
        self.root = bytes(payload[_META_PREFIX_SIZE:root_end])
        self.allocator = PageAllocator.from_bytes(payload[root_end:])

    # -------------------------------------------------------- transactions

    def begin(self) -> int:
        """Open the (single) transaction; returns its txid."""
        if self._tx is not None:
            raise StorageError("transaction already open")
        self._tx = {}
        self._tx_root = None
        self._tx_alloc_backup = self.allocator.to_bytes()
        return self.commit_seq + 1

    def _require_tx(self) -> None:
        if self._tx is None:
            raise StorageError("no open transaction (call begin() first)")

    def put(self, page_id: int, payload: bytes) -> None:
        """Stage ``payload`` as the new content of ``page_id``."""
        self._require_tx()
        if page_id == META_PAGE:
            raise StorageError("page 0 is the meta page; use set_root()")
        if len(payload) > self.page_size - HEADER_SIZE:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds page capacity "
                f"{self.page_size - HEADER_SIZE}"
            )
        self._tx[page_id] = bytes(payload)

    def set_root(self, root: bytes) -> None:
        """Stage a new root blob (published atomically with the commit)."""
        self._require_tx()
        self._tx_root = bytes(root)

    def alloc(self) -> int:
        """Allocate a page id within the open transaction."""
        self._require_tx()
        return self.allocator.alloc()

    def release(self, page_id: int) -> None:
        """Release a page id within the open transaction."""
        self._require_tx()
        self.allocator.release(page_id)

    def abort(self) -> None:
        """Drop the open transaction (restores the allocator)."""
        self._require_tx()
        self.allocator = PageAllocator.from_bytes(self._tx_alloc_backup)
        self._tx = None
        self._tx_root = None

    def commit(self) -> int:
        """Durably apply the open transaction; returns its txid."""
        self._require_tx()
        txid = self.commit_seq + 1
        root = self.root if self._tx_root is None else self._tx_root
        images = {
            pid: pack_page(pid, txid, payload, self.page_size)
            for pid, payload in self._tx.items()
        }
        images[META_PAGE] = pack_page(
            META_PAGE, txid, self._meta_payload(txid, root), self.page_size
        )
        if self.wal is not None:
            for pid in sorted(images):
                self.wal.log_page(txid, pid, images[pid])
            self.wal.commit(txid)
        for pid in sorted(images):
            self.store.write_page(pid, images[pid])
        self.commit_seq = txid
        self.root = root
        self._tx = None
        self._tx_root = None
        self.metrics.counter("storage.commits").inc()
        self.metrics.counter("storage.pages_written").inc(len(images))
        return txid

    # ------------------------------------------------------------- reading

    def read(self, page_id: int) -> bytes:
        """Verified payload of ``page_id`` (raises on any corruption)."""
        buf = self.store.read_page(page_id)
        _, payload = unpack_page(buf, page_id)
        return payload

    # ------------------------------------------- durability points & repair

    def checkpoint(self) -> None:
        """fsync the device, then truncate the WAL (bounds recovery work)."""
        if self._tx is not None:
            raise StorageError("cannot checkpoint with an open transaction")
        self.store.sync()
        if self.wal is not None:
            self.wal.checkpoint(self.commit_seq)
        else:
            self.metrics.counter("storage.checkpoints").inc()

    def recover(self) -> RecoveryReport:
        """Replay the WAL's committed redo set onto the device, then load meta.

        Idempotent: a second call finds nothing to redo.  Raises
        :class:`StorageError` when no committed state exists at all (the
        caller should then re-create the store from scratch).
        """
        report = RecoveryReport()
        if self.wal is not None:
            rp = self.wal.replay()
            report.wal_records = rp.n_records
            report.torn_tail = rp.torn_tail
            for pid in sorted(rp.images):
                image = rp.images[pid]
                current = self.store.read_page(pid)
                if current == image:
                    continue
                try:
                    unpack_page(current, pid)
                except PageCorruptionError:
                    report.pages_torn += 1
                else:
                    report.pages_stale += 1
                self.store.write_page(pid, image)
            self.store.sync()
        self._load_meta()
        report.last_txid = self.commit_seq
        if self.wal is not None:
            self.wal.checkpoint(self.commit_seq)
        self.metrics.counter("storage.recovery.runs").inc()
        self.metrics.counter("storage.recovery.pages_restored").inc(
            report.pages_restored
        )
        self.last_recovery = report
        return report

    def live_pages(self) -> list:
        """Allocated, non-free page ids (excluding the meta page)."""
        free = set(self.allocator.free_pages)
        return [p for p in range(1, self.allocator.next_page_id) if p not in free]

    def fsck(self, repair: bool = False) -> FsckReport:
        """Verify the meta page, the free-list and every live page's CRC.

        With ``repair=True``, corrupt pages that have a committed image in
        the WAL are rewritten from it (same redo rule as :meth:`recover`).
        """
        report = FsckReport()
        images = self.wal.replay().images if (repair and self.wal is not None) else {}
        try:
            self._load_meta()
        except StorageError as exc:
            report.ok = False
            report.problems.append(str(exc))
            report.dumps[META_PAGE] = hexdump(self.store.read_page(META_PAGE))
            if META_PAGE in images:
                self.store.write_page(META_PAGE, images[META_PAGE])
                report.pages_repaired += 1
                report.problems.append("meta page: repaired from WAL")
                self._load_meta()
            else:
                self.metrics.counter("storage.fsck.runs").inc()
                return report
        for problem in self.allocator.validate():
            report.ok = False
            report.problems.append(f"allocator: {problem}")
        unrepaired = 0
        for pid in self.live_pages():
            report.pages_checked += 1
            buf = self.store.read_page(pid)
            try:
                unpack_page(buf, pid)
            except PageCorruptionError as exc:
                report.ok = False
                report.problems.append(f"page {pid}: {exc.reason}")
                report.dumps[pid] = hexdump(buf)
                if pid in images:
                    self.store.write_page(pid, images[pid])
                    report.pages_repaired += 1
                    report.problems.append(f"page {pid}: repaired from WAL")
                elif repair:
                    report.problems.append(f"page {pid}: no WAL image to repair from")
                    unrepaired += 1
                else:
                    unrepaired += 1
        if report.pages_repaired:
            self.store.sync()
            if unrepaired == 0 and not any(
                p.startswith("allocator:") for p in report.problems
            ):
                report.ok = True
        self.metrics.counter("storage.fsck.runs").inc()
        return report
