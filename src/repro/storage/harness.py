"""Crash-injection harness: kill the process at every write boundary.

The harness proves the recovery protocol end to end:

1. run a mixed insert/delete workload against a
   :class:`~repro.storage.gridstore.DurableGridFile` on the ``file``
   backend **without** faults — the *oracle* — and keep its final
   ``pages.dat`` bytes;
2. run a counting pass under a :class:`~repro.storage.faults.CrashClock`
   to enumerate every write / truncate / sync the workload performs;
3. for every such operation (and for both crash phases — die *before*
   the operation, and die *mid-write* leaving a torn page), rerun the
   workload, crash on cue, **recover**, re-apply exactly the operations
   whose commits did not survive, checkpoint — and assert the recovered
   ``pages.dat`` is byte-identical to the oracle's.

Byte-identity (not just logical equivalence) is the strongest statement
available: it implies every committed page image, the allocator
free-list, the catalog and the meta page all landed exactly as if the
crash had never happened.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.gridfile.gridfile import GridFile
from repro.storage.engine import DATA_FILE, RecoveryReport, StorageEngine
from repro.storage.faults import CrashClock, FaultyFile, InjectedCrash
from repro.storage.gridstore import DurableGridFile
from repro.storage.page import PageCorruptionError, StorageError, hexdump, unpack_page

__all__ = [
    "CrashMatrixReport",
    "default_workload",
    "enumerate_boundaries",
    "run_crash_matrix",
    "run_workload",
]

#: Engine transactions that precede the first workload operation: txid 1
#: is the empty store's meta page, txid 2 the initial grid-file snapshot.
_BASE_TXID = 2

_DOMAIN_LO = (0.0, 0.0)
_DOMAIN_HI = (1.0, 1.0)


def default_workload(n_ops: int = 40, capacity: int = 4, seed: int = 1996) -> list:
    """A deterministic mixed insert/delete op list exercising splits/merges.

    Ops are ``("insert", coords)`` / ``("delete", rid)``; record ids are
    assigned sequentially by insertion order, so the list is replayable
    against any store. Returns ops whose application triggers bucket
    splits, scale refinements, merges and bucket removals at the given
    (small) ``capacity``.
    """
    rng = np.random.default_rng(seed)
    ops: list = []
    live: list[int] = []
    next_rid = 0
    for _ in range(n_ops):
        if live and rng.random() < 0.35:
            rid = live.pop(int(rng.integers(len(live))))
            ops.append(("delete", rid))
        else:
            ops.append(("insert", rng.random(2)))
            live.append(next_rid)
            next_rid += 1
    return ops


def _fresh_gridfile(capacity: int) -> GridFile:
    return GridFile.empty(_DOMAIN_LO, _DOMAIN_HI, capacity=capacity)


def _wipe(directory: Path) -> None:
    if directory.exists():
        shutil.rmtree(directory)


def run_workload(
    ops, directory, capacity: int = 4, file_factory=None, **engine_kwargs
) -> DurableGridFile:
    """Create a durable grid file in ``directory`` and apply all ``ops``."""
    durable = DurableGridFile.create(
        _fresh_gridfile(capacity),
        directory,
        backend="file",
        file_factory=file_factory,
        **engine_kwargs,
    )
    for op in ops:
        durable.apply(op)
    durable.checkpoint()
    return durable


def enumerate_boundaries(
    ops, workdir, capacity: int = 4, phases=("before", "mid"), **engine_kwargs
) -> list:
    """All ``(op_index, phase)`` crash points of the workload.

    Runs one counting pass (no crash) under a :class:`CrashClock` and
    expands each observed I/O operation into the requested phases
    (``"mid"`` only applies to writes of at least two bytes).
    """
    workdir = Path(workdir)
    count_dir = workdir / "count"
    _wipe(count_dir)
    clock = CrashClock()
    durable = run_workload(
        ops,
        count_dir,
        capacity=capacity,
        file_factory=lambda path, mode: FaultyFile(path, mode, clock=clock),
        **engine_kwargs,
    )
    durable.close()
    boundaries = []
    for op_index, (kind, size) in enumerate(clock.ops):
        if "before" in phases:
            boundaries.append((op_index, "before"))
        if "mid" in phases and kind == "write" and size >= 2:
            boundaries.append((op_index, "mid"))
    return boundaries


@dataclass
class CrashMatrixReport:
    """Outcome of :func:`run_crash_matrix`."""

    n_boundaries: int = 0
    n_crashed: int = 0
    #: Trials that died before any commit survived and restarted from scratch.
    n_restarted: int = 0
    #: Trials whose crash landed after the workload's last commit.
    n_completed: int = 0
    pages_torn: int = 0
    pages_stale: int = 0
    torn_tails: int = 0
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every crash recovered to the oracle's exact bytes."""
        return not self.failures


def _recover_and_finish(ops, trial_dir, capacity, report, **engine_kwargs):
    """Reopen after a crash, re-apply uncommitted ops, checkpoint, close."""
    try:
        durable = DurableGridFile.open(trial_dir, backend="file", **engine_kwargs)
    except StorageError:
        # The crash predates the first durable commit: an empty or rootless
        # store.  Starting over is the only (and correct) recovery.
        report.n_restarted += 1
        _wipe(trial_dir)
        durable = run_workload(ops, trial_dir, capacity=capacity, **engine_kwargs)
        durable.close()
        return
    committed = durable.engine.commit_seq - _BASE_TXID
    durable.gf.check_invariants()
    for op in ops[committed:]:
        durable.apply(op)
    durable.checkpoint()
    durable.close()


def _dump_artifacts(oracle: bytes, got: bytes, trial_dir, label: str) -> None:
    art_dir = os.environ.get("REPRO_CRASH_ARTIFACTS")
    if not art_dir:
        return
    out = Path(art_dir)
    out.mkdir(parents=True, exist_ok=True)
    page = 4096
    lines = [f"trial {label}: oracle {len(oracle)} bytes, recovered {len(got)} bytes"]
    for pid in range(max(len(oracle), len(got)) // page + 1):
        a = oracle[pid * page : (pid + 1) * page]
        b = got[pid * page : (pid + 1) * page]
        if a != b:
            lines.append(f"--- page {pid} (oracle) ---")
            lines.append(hexdump(a))
            lines.append(f"--- page {pid} (recovered) ---")
            lines.append(hexdump(b))
    (out / f"{label}.hexdump.txt").write_text("\n".join(lines))


def run_crash_matrix(
    ops,
    workdir,
    capacity: int = 4,
    boundaries=None,
    phases=("before", "mid"),
    lose_unsynced: bool = False,
    **engine_kwargs,
) -> CrashMatrixReport:
    """Crash at every write boundary; assert recovery is byte-perfect.

    ``lose_unsynced=True`` switches from the process-kill model to the
    power-loss model (unsynced writes vanish at the crash instant).  On
    mismatch, page hexdumps are written to ``$REPRO_CRASH_ARTIFACTS`` if
    that variable names a directory.
    """
    workdir = Path(workdir)
    oracle_dir = workdir / "oracle"
    _wipe(oracle_dir)
    oracle = run_workload(ops, oracle_dir, capacity=capacity, **engine_kwargs)
    oracle.close()
    oracle_bytes = (oracle_dir / DATA_FILE).read_bytes()

    if boundaries is None:
        boundaries = enumerate_boundaries(
            ops, workdir, capacity=capacity, phases=phases, **engine_kwargs
        )
    report = CrashMatrixReport(n_boundaries=len(boundaries))
    trial_dir = workdir / "trial"
    for op_index, phase in boundaries:
        _wipe(trial_dir)
        clock = CrashClock(crash_op=op_index, phase=phase)
        factory = lambda path, mode: FaultyFile(  # noqa: E731
            path, mode, clock=clock, lose_unsynced=lose_unsynced
        )
        try:
            durable = run_workload(
                ops, trial_dir, capacity=capacity, file_factory=factory, **engine_kwargs
            )
            durable.close()
            report.n_completed += 1
        except InjectedCrash:
            for f in clock.files:  # release the dead process's handles
                f.close()
            report.n_crashed += 1
            recovery = _probe_recovery(trial_dir, engine_kwargs)
            if recovery is not None:
                report.pages_torn += recovery.pages_torn
                report.pages_stale += recovery.pages_stale
                report.torn_tails += int(recovery.torn_tail)
            _recover_and_finish(ops, trial_dir, capacity, report, **engine_kwargs)
        got = (trial_dir / DATA_FILE).read_bytes()
        if got != oracle_bytes:
            label = f"crash-op{op_index}-{phase}"
            report.failures.append(
                f"{label}: recovered store differs from oracle "
                f"({len(got)} vs {len(oracle_bytes)} bytes)"
            )
            _dump_artifacts(oracle_bytes, got, trial_dir, label)
    return report


def _probe_recovery(trial_dir, engine_kwargs):
    """Peek at what recovery would repair (stats only, side-effect free)."""
    probe_kwargs = {
        k: v for k, v in engine_kwargs.items() if k in ("page_size", "durability")
    }
    try:
        eng = StorageEngine(trial_dir, backend="file", **probe_kwargs)
    except OSError:  # pragma: no cover - the store directory vanished
        return None
    try:
        if eng.wal is None:
            return None
        replay = eng.wal.replay()
        rep = RecoveryReport(torn_tail=replay.torn_tail, wal_records=replay.n_records)
        for pid, image in replay.images.items():
            current = eng.store.read_page(pid)
            if current == image:
                continue
            try:
                unpack_page(current, pid)
            except PageCorruptionError:
                rep.pages_torn += 1
            else:
                rep.pages_stale += 1
        return rep
    finally:
        eng.close()
