"""Page allocator with a persistent free-list.

The allocator hands out page ids monotonically (``next_page_id``) and
recycles released pages LIFO through a free-list.  Its entire state
serialises to a few bytes that the engine embeds in the meta page, so the
free-list is exactly as durable as the rest of a commit — a crash can
never leak or double-allocate a page that recovery keeps.
"""

from __future__ import annotations

import struct

from repro.storage.page import StorageError

__all__ = ["PageAllocator"]

_HEADER = "<QI"  # next_page_id, free count
_HEADER_SIZE = struct.calcsize(_HEADER)


class PageAllocator:
    """Monotonic page-id dispenser with a LIFO free-list.

    Page 0 is reserved for the engine's meta page, so ``next_page_id``
    starts at 1.
    """

    def __init__(self, next_page_id: int = 1, free: tuple = ()):
        if next_page_id < 1:
            raise ValueError(f"next_page_id must be >= 1, got {next_page_id}")
        self.next_page_id = int(next_page_id)
        self._free: list[int] = [int(p) for p in free]

    @property
    def free_pages(self) -> tuple:
        """The current free-list, most recently released first."""
        return tuple(reversed(self._free))

    def alloc(self) -> int:
        """Hand out a page id (recycled if available, else a fresh one)."""
        if self._free:
            return self._free.pop()
        pid = self.next_page_id
        self.next_page_id += 1
        return pid

    def release(self, page_id: int) -> None:
        """Return ``page_id`` to the free-list for reuse."""
        pid = int(page_id)
        if not 1 <= pid < self.next_page_id:
            raise StorageError(f"release of unallocated page {pid}")
        if pid in self._free:
            raise StorageError(f"double release of page {pid}")
        self._free.append(pid)

    def to_bytes(self) -> bytes:
        """Serialise for embedding in the meta page."""
        return struct.pack(_HEADER, self.next_page_id, len(self._free)) + struct.pack(
            f"<{len(self._free)}I", *self._free
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PageAllocator":
        """Inverse of :meth:`to_bytes`."""
        if len(blob) < _HEADER_SIZE:
            raise StorageError(f"allocator blob too short ({len(blob)} bytes)")
        next_pid, n_free = struct.unpack_from(_HEADER, blob)
        want = _HEADER_SIZE + 4 * n_free
        if len(blob) < want:
            raise StorageError(f"allocator blob truncated ({len(blob)} < {want} bytes)")
        free = struct.unpack_from(f"<{n_free}I", blob, _HEADER_SIZE)
        alloc = cls(next_pid)
        alloc._free = list(free)
        return alloc

    def validate(self) -> list[str]:
        """Consistency problems as human-readable strings (empty = OK)."""
        problems = []
        seen = set()
        for pid in self._free:
            if not 1 <= pid < self.next_page_id:
                problems.append(f"free-list entry {pid} outside [1, {self.next_page_id})")
            if pid in seen:
                problems.append(f"free-list entry {pid} duplicated")
            seen.add(pid)
        return problems
