"""Pluggable block devices: fixed-size page I/O over memory, file or mmap.

A :class:`BlockStore` is the raw device abstraction under the storage
engine — it reads and writes whole pages by id and knows how to make them
durable (:meth:`BlockStore.sync`).  Three backends:

* ``memory`` — a bytearray; no durability, the unit-test device;
* ``file`` — classic seek/read/write on a regular file with
  ``fsync``-backed :meth:`~BlockStore.sync` (the crash-injection harness
  wraps this backend's file object with a
  :class:`~repro.storage.faults.FaultyFile`);
* ``mmap`` — a memory-mapped file, grown in page-aligned chunks, with
  ``msync``-backed flush.

Reads past the end of the device return zero-filled pages (which fail the
page CRC and are treated as never written), so recovery can probe any page
id without tracking the device length separately.
"""

from __future__ import annotations

import mmap
import os
from abc import ABC, abstractmethod
from pathlib import Path

from repro.storage.page import DEFAULT_PAGE_SIZE, StorageError

__all__ = [
    "BLOCK_STORES",
    "BlockStore",
    "FileBlockStore",
    "MemoryBlockStore",
    "MmapBlockStore",
    "make_block_store",
]


class BlockStore(ABC):
    """Fixed-size page I/O: the device interface under the storage engine."""

    #: Registry key of the backend ("memory" / "file" / "mmap").
    kind: str = "abstract"

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < 64:
            raise ValueError(f"page_size must be >= 64, got {page_size}")
        self.page_size = int(page_size)

    @abstractmethod
    def read_page(self, page_id: int) -> bytes:
        """The ``page_size`` bytes of page ``page_id`` (zeros past the end)."""

    @abstractmethod
    def write_page(self, page_id: int, buf: bytes) -> None:
        """Overwrite page ``page_id``; the device grows as needed."""

    @abstractmethod
    def sync(self) -> None:
        """Make every completed write durable (fsync / msync)."""

    @property
    @abstractmethod
    def n_pages(self) -> int:
        """Device length in pages (a torn tail counts as one page)."""

    def close(self) -> None:
        """Release the backing resources (no implicit sync)."""

    def _check_write(self, page_id: int, buf: bytes) -> None:
        if page_id < 0:
            raise ValueError(f"page id must be non-negative, got {page_id}")
        if len(buf) != self.page_size:
            raise ValueError(
                f"page writes must be exactly {self.page_size} bytes, got {len(buf)}"
            )

    def __enter__(self) -> "BlockStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryBlockStore(BlockStore):
    """An in-memory device (no durability; unit tests and dry runs)."""

    kind = "memory"

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        super().__init__(page_size)
        self._buf = bytearray()

    def read_page(self, page_id: int) -> bytes:
        start = page_id * self.page_size
        chunk = bytes(self._buf[start : start + self.page_size])
        return chunk + b"\x00" * (self.page_size - len(chunk))

    def write_page(self, page_id: int, buf: bytes) -> None:
        self._check_write(page_id, buf)
        end = (page_id + 1) * self.page_size
        if len(self._buf) < end:
            self._buf.extend(b"\x00" * (end - len(self._buf)))
        self._buf[page_id * self.page_size : end] = buf

    def sync(self) -> None:
        pass

    @property
    def n_pages(self) -> int:
        return -(-len(self._buf) // self.page_size)


class FileBlockStore(BlockStore):
    """Seek/read/write page I/O on a regular file.

    ``file_factory(path, mode)`` replaces the builtin ``open`` — the
    crash-injection harness passes a factory returning a
    :class:`~repro.storage.faults.FaultyFile` so every write and sync of
    the device goes through the fault injector.
    """

    kind = "file"

    def __init__(self, path, page_size: int = DEFAULT_PAGE_SIZE, file_factory=None):
        super().__init__(page_size)
        self.path = Path(path)
        factory = file_factory if file_factory is not None else open
        mode = "r+b" if self.path.exists() else "w+b"
        self._f = factory(self.path, mode)

    def read_page(self, page_id: int) -> bytes:
        self._f.seek(page_id * self.page_size)
        chunk = self._f.read(self.page_size)
        return chunk + b"\x00" * (self.page_size - len(chunk))

    def write_page(self, page_id: int, buf: bytes) -> None:
        self._check_write(page_id, buf)
        self._f.seek(page_id * self.page_size)
        self._f.write(buf)

    def sync(self) -> None:
        if hasattr(self._f, "sync"):  # FaultyFile intercepts fsync here
            self._f.sync()
        else:
            self._f.flush()
            os.fsync(self._f.fileno())

    @property
    def n_pages(self) -> int:
        pos = self._f.tell()
        size = self._f.seek(0, os.SEEK_END)
        self._f.seek(pos)
        return -(-size // self.page_size)

    def close(self) -> None:
        self._f.close()


class MmapBlockStore(BlockStore):
    """A memory-mapped file, grown in page-aligned chunks of 64 pages."""

    kind = "mmap"

    #: Growth quantum in pages (remaps are expensive).
    GROW_PAGES = 64

    def __init__(self, path, page_size: int = DEFAULT_PAGE_SIZE):
        super().__init__(page_size)
        self.path = Path(path)
        mode = "r+b" if self.path.exists() else "w+b"
        self._f = open(self.path, mode)
        self._f.seek(0, os.SEEK_END)
        size = self._f.tell()
        if size == 0:
            # mmap cannot map an empty file; start with one growth chunk.
            self._grow_file(self.GROW_PAGES * self.page_size)
            size = self.GROW_PAGES * self.page_size
        elif size % self.page_size:
            # A torn tail write left a partial page; pad so it maps whole.
            self._grow_file(-(-size // self.page_size) * self.page_size)
            size = -(-size // self.page_size) * self.page_size
        self._mm = mmap.mmap(self._f.fileno(), size)

    def _grow_file(self, new_size: int) -> None:
        self._f.truncate(new_size)
        self._f.flush()

    def _ensure(self, end: int) -> None:
        if end <= len(self._mm):
            return
        chunk = self.GROW_PAGES * self.page_size
        new_size = -(-end // chunk) * chunk
        self._mm.flush()
        self._mm.close()
        self._grow_file(new_size)
        self._mm = mmap.mmap(self._f.fileno(), new_size)

    def read_page(self, page_id: int) -> bytes:
        start = page_id * self.page_size
        if start >= len(self._mm):
            return b"\x00" * self.page_size
        return bytes(self._mm[start : start + self.page_size])

    def write_page(self, page_id: int, buf: bytes) -> None:
        self._check_write(page_id, buf)
        end = (page_id + 1) * self.page_size
        self._ensure(end)
        self._mm[page_id * self.page_size : end] = buf

    def sync(self) -> None:
        self._mm.flush()
        os.fsync(self._f.fileno())

    @property
    def n_pages(self) -> int:
        return len(self._mm) // self.page_size

    def close(self) -> None:
        self._mm.close()
        self._f.close()


#: Backend registry (the ``--store`` CLI knob and ``make_store`` use it).
BLOCK_STORES = {
    "memory": MemoryBlockStore,
    "file": FileBlockStore,
    "mmap": MmapBlockStore,
}


def make_block_store(
    kind: str, path=None, page_size: int = DEFAULT_PAGE_SIZE, **kwargs
) -> BlockStore:
    """Instantiate a registered backend (``memory`` needs no path)."""
    try:
        cls = BLOCK_STORES[kind]
    except KeyError:
        raise StorageError(
            f"unknown block store {kind!r} (choose from {sorted(BLOCK_STORES)})"
        ) from None
    if kind == "memory":
        return cls(page_size=page_size)
    if path is None:
        raise StorageError(f"block store {kind!r} requires a path")
    return cls(path, page_size=page_size, **kwargs)
