"""Checksummed on-disk page format: the unit of durable storage.

Every page in a :class:`~repro.storage.blockstore.BlockStore` carries a
fixed little-endian header followed by the payload and zero padding::

    offset  size  field
    0       4     magic        b"GFP1"
    4       4     page_id      u32 — must match the page's position
    8       8     lsn          u64 — commit sequence number of the writer
    16      4     payload_len  u32
    20      4     crc32        u32 over header[0:20] + payload

The CRC covers the header prefix *and* the payload, so a torn write (only
part of the page made it to disk), a bit flip anywhere in header or
payload, and a page written to the wrong slot (``page_id`` mismatch) are
all detected by :func:`unpack_page`.  A never-written page reads as zeros
and fails the magic check, which recovery treats the same as torn.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "HEADER_SIZE",
    "PAGE_MAGIC",
    "PageCorruptionError",
    "PageHeader",
    "StorageError",
    "hexdump",
    "pack_page",
    "unpack_page",
]

PAGE_MAGIC = b"GFP1"
_PREFIX = "<4sIQI"  # magic, page_id, lsn, payload_len (crc32 appended)
_PREFIX_SIZE = struct.calcsize(_PREFIX)
HEADER_SIZE = _PREFIX_SIZE + 4
DEFAULT_PAGE_SIZE = 4096


class StorageError(Exception):
    """Base error of the durable storage layer."""


class PageCorruptionError(StorageError):
    """A page failed verification (torn write, bit flip, wrong slot).

    Attributes
    ----------
    page_id:
        The expected page id (position in the store), or the id claimed by
        the header when no expectation was given.
    reason:
        Human-readable failure cause (``"bad magic"``, ``"crc mismatch"``,
        ``"empty"``, ...).
    """

    def __init__(self, page_id: int, reason: str):
        super().__init__(f"page {page_id}: {reason}")
        self.page_id = page_id
        self.reason = reason


@dataclass(frozen=True)
class PageHeader:
    """Decoded page header (see the module docstring for the layout)."""

    page_id: int
    lsn: int
    payload_len: int
    crc: int


def pack_page(page_id: int, lsn: int, payload: bytes, page_size: int = DEFAULT_PAGE_SIZE) -> bytes:
    """Frame ``payload`` into a checksummed page of exactly ``page_size`` bytes."""
    if len(payload) > page_size - HEADER_SIZE:
        raise ValueError(
            f"payload of {len(payload)} bytes exceeds page capacity "
            f"{page_size - HEADER_SIZE}"
        )
    prefix = struct.pack(_PREFIX, PAGE_MAGIC, page_id, lsn, len(payload))
    crc = zlib.crc32(prefix + payload)
    page = prefix + struct.pack("<I", crc) + payload
    return page + b"\x00" * (page_size - len(page))


def unpack_page(buf: bytes, expected_id: "int | None" = None) -> tuple[PageHeader, bytes]:
    """Verify and decode a page buffer; raises :class:`PageCorruptionError`.

    ``expected_id`` (the page's position in the store) additionally guards
    against a valid page written to the wrong slot.
    """
    pid = expected_id if expected_id is not None else -1
    if len(buf) < HEADER_SIZE:
        raise PageCorruptionError(pid, f"short page ({len(buf)} bytes)")
    if not any(buf):
        raise PageCorruptionError(pid, "empty (all zeros)")
    magic, page_id, lsn, payload_len = struct.unpack_from(_PREFIX, buf)
    (crc,) = struct.unpack_from("<I", buf, _PREFIX_SIZE)
    if magic != PAGE_MAGIC:
        raise PageCorruptionError(pid, f"bad magic {magic!r}")
    if payload_len > len(buf) - HEADER_SIZE:
        raise PageCorruptionError(page_id, f"payload length {payload_len} exceeds page")
    payload = bytes(buf[HEADER_SIZE : HEADER_SIZE + payload_len])
    want = zlib.crc32(bytes(buf[:_PREFIX_SIZE]) + payload)
    if crc != want:
        raise PageCorruptionError(page_id, f"crc mismatch ({crc:#010x} != {want:#010x})")
    if expected_id is not None and page_id != expected_id:
        raise PageCorruptionError(expected_id, f"page id {page_id} in slot {expected_id}")
    return PageHeader(page_id, lsn, payload_len, crc), payload


def hexdump(buf: bytes, width: int = 16, max_bytes: int = 512) -> str:
    """Classic offset/hex/ASCII dump of a buffer (for corruption reports)."""
    lines = []
    for off in range(0, min(len(buf), max_bytes), width):
        chunk = buf[off : off + width]
        hexed = " ".join(f"{b:02x}" for b in chunk)
        text = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{off:08x}  {hexed:<{width * 3}} |{text}|")
    if len(buf) > max_bytes:
        lines.append(f"... ({len(buf) - max_bytes} more bytes)")
    return "\n".join(lines)
