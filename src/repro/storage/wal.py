"""Write-ahead log with physical redo records and torn-tail recovery.

Protocol (append → fsync → apply):

1. every page a transaction will touch is appended to the log as a **full
   page image** (``PAGE`` record — the page bytes exactly as they will be
   written to the data device);
2. a ``COMMIT`` record seals the transaction and the log is fsynced
   (``sync_on_commit``);
3. only then are the images applied to the data device.

Because the images are physical, replay is idempotent: writing the last
committed image of each page any number of times converges to the same
device state.  :meth:`WriteAheadLog.replay` scans the log from the start
and stops at the first record whose magic, length or CRC fails — the
standard *torn tail* rule: everything before the tear is intact (it was
fsynced before later records were appended), everything after belongs to
a transaction that never committed.

Record layout (little-endian)::

    offset  size  field
    0       2     magic        b"WL"
    2       1     type         1=PAGE, 2=COMMIT, 3=CHECKPOINT
    3       1     (pad)
    4       8     txid         u64 commit sequence number
    12      4     page_id      u32 (PAGE records; else 0)
    16      4     payload_len  u32
    20      4     crc32        u32 over header[0:20] + payload

A ``CHECKPOINT`` record is written to a freshly truncated log once the
data device has been fsynced — every earlier image is then superseded by
the device itself, which bounds both log length and recovery time.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.storage.page import StorageError

__all__ = [
    "REC_CHECKPOINT",
    "REC_COMMIT",
    "REC_HEADER_SIZE",
    "REC_PAGE",
    "WalReplay",
    "WriteAheadLog",
]

WAL_MAGIC = b"WL"
_REC_PREFIX = "<2sBxQII"  # magic, type, pad, txid, page_id, payload_len
_REC_PREFIX_SIZE = struct.calcsize(_REC_PREFIX)
REC_HEADER_SIZE = _REC_PREFIX_SIZE + 4

REC_PAGE = 1
REC_COMMIT = 2
REC_CHECKPOINT = 3


@dataclass
class WalReplay:
    """Result of scanning the log: the committed redo set.

    ``images`` maps page id to the image of its **last committed** writer;
    applying them all (in any order, any number of times) brings the data
    device to the state as of transaction ``last_txid``.
    """

    images: dict[int, bytes] = field(default_factory=dict)
    #: Highest committed transaction id seen (0 when none committed).
    last_txid: int = 0
    #: Complete records scanned (committed or not).
    n_records: int = 0
    #: True when the scan stopped at a torn/corrupt record before EOF.
    torn_tail: bool = False
    #: Byte offset of the first invalid record (== log length when clean).
    valid_bytes: int = 0


class WriteAheadLog:
    """Append-only redo log over a single file.

    Parameters
    ----------
    path:
        Log file location (created empty if missing).
    sync_on_commit:
        fsync the log inside :meth:`commit` (the durable default).  With
        ``False`` the log is only fsynced at checkpoints — commits may be
        lost on crash, but recovery still lands on a consistent prefix
        (``benchmarks/bench_ext_durability.py`` measures the gap).
    file_factory:
        Replacement for ``open`` (fault injection — see
        :class:`~repro.storage.faults.FaultyFile`).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` for append/fsync
        counters (``storage.wal.*``).
    """

    def __init__(self, path, sync_on_commit: bool = True, file_factory=None, metrics=None):
        self.path = Path(path)
        self.sync_on_commit = bool(sync_on_commit)
        self.metrics = metrics
        factory = file_factory if file_factory is not None else open
        mode = "r+b" if self.path.exists() else "w+b"
        self._f = factory(self.path, mode)
        self._end = self._f.seek(0, os.SEEK_END)

    # ------------------------------------------------------------- appending

    def _append(self, rec_type: int, txid: int, page_id: int, payload: bytes) -> None:
        prefix = struct.pack(_REC_PREFIX, WAL_MAGIC, rec_type, txid, page_id, len(payload))
        crc = zlib.crc32(prefix + payload)
        self._f.seek(self._end)
        self._f.write(prefix + struct.pack("<I", crc) + payload)
        self._end += REC_HEADER_SIZE + len(payload)
        if self.metrics is not None:
            self.metrics.counter("storage.wal.appends").inc()
            self.metrics.counter("storage.wal.bytes").inc(REC_HEADER_SIZE + len(payload))

    def log_page(self, txid: int, page_id: int, page_bytes: bytes) -> None:
        """Append the full page image a transaction is about to apply."""
        self._append(REC_PAGE, txid, page_id, page_bytes)

    def commit(self, txid: int) -> None:
        """Seal transaction ``txid`` (fsyncs when ``sync_on_commit``)."""
        self._append(REC_COMMIT, txid, 0, b"")
        if self.sync_on_commit:
            self.sync()

    def sync(self) -> None:
        """fsync the log file."""
        if hasattr(self._f, "sync"):  # FaultyFile intercepts fsync here
            self._f.sync()
        else:
            self._f.flush()
            os.fsync(self._f.fileno())
        if self.metrics is not None:
            self.metrics.counter("storage.wal.fsyncs").inc()

    def checkpoint(self, txid: int) -> None:
        """Restart the log after the data device was made durable."""
        self._f.truncate(0)
        self._end = 0
        self._append(REC_CHECKPOINT, txid, 0, b"")
        self.sync()
        if self.metrics is not None:
            self.metrics.counter("storage.checkpoints").inc()

    # --------------------------------------------------------------- replay

    def replay(self) -> WalReplay:
        """Scan the log; return the committed redo set (torn tail dropped)."""
        self._f.seek(0, os.SEEK_END)
        size = self._f.tell()
        self._f.seek(0)
        data = self._f.read(size)
        out = WalReplay()
        staged: dict[int, dict[int, bytes]] = {}
        pos = 0
        while pos + REC_HEADER_SIZE <= len(data):
            magic, rec_type, txid, page_id, payload_len = struct.unpack_from(
                _REC_PREFIX, data, pos
            )
            (crc,) = struct.unpack_from("<I", data, pos + _REC_PREFIX_SIZE)
            end = pos + REC_HEADER_SIZE + payload_len
            if magic != WAL_MAGIC or end > len(data):
                out.torn_tail = True
                break
            payload = data[pos + REC_HEADER_SIZE : end]
            if crc != zlib.crc32(data[pos : pos + _REC_PREFIX_SIZE] + payload):
                out.torn_tail = True
                break
            out.n_records += 1
            if rec_type == REC_PAGE:
                staged.setdefault(txid, {})[page_id] = bytes(payload)
            elif rec_type == REC_COMMIT:
                out.images.update(staged.pop(txid, {}))
                out.last_txid = max(out.last_txid, txid)
            elif rec_type == REC_CHECKPOINT:
                # The device was durable at this point; earlier images are
                # superseded (only reachable when truncation was interrupted).
                staged.clear()
                out.images.clear()
                out.last_txid = max(out.last_txid, txid)
            else:
                raise StorageError(f"unknown WAL record type {rec_type}")
            pos = end
        else:
            if pos != len(data):
                out.torn_tail = True  # trailing bytes shorter than a header
        out.valid_bytes = pos
        return out

    def close(self) -> None:
        """Close the log file (no implicit sync)."""
        self._f.close()
