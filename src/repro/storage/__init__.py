"""Crash-safe on-disk storage: pages, block devices, WAL and recovery.

The simulator's analytic disk model (``repro.parallel``) answers *how
long* I/O takes; this package answers *whether the data survives*.  It
provides real durable storage for grid files:

* :mod:`~repro.storage.page` — checksummed page format (magic, page id,
  LSN, CRC32) detecting torn writes, bit flips and wrong-slot writes;
* :mod:`~repro.storage.blockstore` — pluggable block devices
  (``memory`` / ``file`` / ``mmap``);
* :mod:`~repro.storage.allocator` — page allocator with a persistent
  free-list;
* :mod:`~repro.storage.wal` — write-ahead log with physical redo and
  torn-tail recovery;
* :mod:`~repro.storage.engine` — single-writer transactional engine
  (meta page, commit protocol, :meth:`~repro.storage.engine.StorageEngine.recover`,
  :meth:`~repro.storage.engine.StorageEngine.fsck`);
* :mod:`~repro.storage.gridstore` — a live
  :class:`~repro.gridfile.GridFile` paged onto the engine
  (:class:`~repro.storage.gridstore.DurableGridFile`);
* :mod:`~repro.storage.faults` / :mod:`~repro.storage.harness` — fault
  injection (killed writes, dropped fsyncs, bit flips) and the
  crash-at-every-write-boundary matrix that proves recovery is
  byte-perfect.

See ``docs/storage.md`` for the on-disk formats and the recovery
protocol.
"""

from repro.storage.allocator import PageAllocator
from repro.storage.blockstore import (
    BLOCK_STORES,
    BlockStore,
    FileBlockStore,
    MemoryBlockStore,
    MmapBlockStore,
    make_block_store,
)
from repro.storage.engine import (
    DATA_FILE,
    DURABILITY_MODES,
    META_PAGE,
    WAL_FILE,
    FsckReport,
    RecoveryReport,
    StorageEngine,
)
from repro.storage.faults import CrashClock, FaultyFile, InjectedCrash
from repro.storage.gridstore import DurableGridFile
from repro.storage.harness import (
    CrashMatrixReport,
    default_workload,
    enumerate_boundaries,
    run_crash_matrix,
    run_workload,
)
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    HEADER_SIZE,
    PAGE_MAGIC,
    PageCorruptionError,
    PageHeader,
    StorageError,
    hexdump,
    pack_page,
    unpack_page,
)
from repro.storage.wal import (
    REC_CHECKPOINT,
    REC_COMMIT,
    REC_HEADER_SIZE,
    REC_PAGE,
    WalReplay,
    WriteAheadLog,
)

__all__ = [
    "BLOCK_STORES",
    "DATA_FILE",
    "DEFAULT_PAGE_SIZE",
    "DURABILITY_MODES",
    "HEADER_SIZE",
    "META_PAGE",
    "PAGE_MAGIC",
    "REC_CHECKPOINT",
    "REC_COMMIT",
    "REC_HEADER_SIZE",
    "REC_PAGE",
    "WAL_FILE",
    "BlockStore",
    "CrashClock",
    "CrashMatrixReport",
    "DurableGridFile",
    "FaultyFile",
    "FileBlockStore",
    "FsckReport",
    "InjectedCrash",
    "MemoryBlockStore",
    "MmapBlockStore",
    "PageAllocator",
    "PageCorruptionError",
    "PageHeader",
    "RecoveryReport",
    "StorageEngine",
    "StorageError",
    "WalReplay",
    "WriteAheadLog",
    "default_workload",
    "enumerate_boundaries",
    "hexdump",
    "make_block_store",
    "pack_page",
    "run_crash_matrix",
    "run_workload",
    "unpack_page",
]
