"""Small argument-validation helpers used at public API boundaries.

The library follows "validate at the edge": public constructors and entry
points validate eagerly with informative errors; internal hot loops assume
valid inputs and stay branch-free for numpy-friendliness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_positive_int", "check_dimension", "check_probability"]


def check_positive_int(value, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it.

    Accepts numpy integer scalars (common when values come out of arrays).
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_dimension(d, name: str = "dimensionality") -> int:
    """Validate a dimensionality argument (1..32 inclusive)."""
    d = check_positive_int(d, name)
    if d > 32:
        raise ValueError(f"{name} must be <= 32, got {d}")
    return d


def check_probability(value, name: str) -> float:
    """Validate that ``value`` is a float in ``[0, 1]`` and return it."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value
