"""A fixed-capacity LRU set of keys.

Shared by the cluster simulator (per-node buffer caches of disk blocks,
:mod:`repro.parallel.cache`) and the paged-directory model
(:mod:`repro.gridfile.paged`).  A hit refreshes recency; an overflowing
insert evicts the least recently used key.
"""

from __future__ import annotations

from collections import OrderedDict

from repro._util import check_positive_int

__all__ = ["LRUCache"]


class LRUCache:
    """Fixed-capacity LRU set of block ids.

    Parameters
    ----------
    capacity:
        Number of blocks the cache holds; 0 disables caching.
    """

    def __init__(self, capacity: int):
        if capacity != 0:
            check_positive_int(capacity, "capacity")
        self.capacity = int(capacity)
        self._blocks: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, block_id: int) -> bool:
        """Touch a block; returns True on a hit (and updates recency)."""
        if self.capacity == 0:
            self.misses += 1
            return False
        if block_id in self._blocks:
            self._blocks.move_to_end(block_id)
            self.hits += 1
            return True
        self.misses += 1
        self._blocks[block_id] = None
        if len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)
        return False

    def invalidate(self, block_id: int) -> bool:
        """Drop a block if cached; returns True when an entry was removed.

        Used by the online engine when a write, split or bucket renumbering
        makes a cached copy stale.  Does not touch the hit/miss counters —
        invalidation is a coherence action, not an access.
        """
        if block_id in self._blocks:
            del self._blocks[block_id]
            return True
        return False

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
