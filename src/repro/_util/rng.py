"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (dataset generators, random query
workloads, random seeding in the minimax algorithm, the *random selection*
conflict-resolution heuristic) accepts an ``rng`` argument that may be

* ``None`` — a fresh, OS-seeded generator (non-reproducible),
* an ``int`` — a :class:`numpy.random.Generator` seeded with that value,
* an existing :class:`numpy.random.Generator` — used as-is.

Centralising the coercion keeps experiment scripts reproducible with a single
seed while letting interactive users not think about it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rng"]


def as_rng(rng: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an integer seed, or an existing generator.

    Returns
    -------
    numpy.random.Generator
        A generator; if one was passed in, it is returned unchanged so that
        streams are shared (and therefore advance) across calls.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int or numpy Generator, got {type(rng)!r}")


def spawn_rng(rng: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Used by parameter sweeps so that e.g. each (method, number-of-disks)
    configuration sees an independent stream while the whole sweep stays
    reproducible from one seed.
    """
    base = as_rng(rng)
    return [np.random.default_rng(s) for s in base.bit_generator.seed_seq.spawn(n)]
