"""Terminal line charts.

The paper's figures are response-time-vs-disks curves; ``line_chart``
renders them right in the terminal so `repro-decluster experiment figN
--plot` shows the crossovers without leaving the shell.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro._util.validate import check_positive_int

__all__ = ["line_chart"]

#: Plot markers assigned to series in order.
MARKERS = "ox+*#@%&"


def line_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 18,
    title: "str | None" = None,
    y_label: str = "",
) -> str:
    """Render series as an ASCII line chart.

    Parameters
    ----------
    x_values:
        Common x coordinates (e.g. disk counts).
    series:
        Name -> y values (same length as ``x_values``).
    width, height:
        Canvas size in characters (axes excluded).
    title:
        Optional title line.
    y_label:
        Label printed above the y axis.

    Returns
    -------
    str
        The chart with a legend, ready to print.
    """
    width = check_positive_int(width, "width", minimum=8)
    height = check_positive_int(height, "height", minimum=4)
    x = np.asarray(list(x_values), dtype=np.float64)
    if x.size < 2:
        raise ValueError("need at least two x values")
    ys = {}
    for name, vals in series.items():
        arr = np.asarray(list(vals), dtype=np.float64)
        if arr.shape != x.shape:
            raise ValueError(f"series {name!r} length does not match x")
        ys[name] = arr
    if not ys:
        raise ValueError("no series to plot")

    all_y = np.concatenate(list(ys.values()))
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x.min()), float(x.max())

    canvas = [[" "] * width for _ in range(height)]

    def col(xv: float) -> int:
        return int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))

    def row(yv: float) -> int:
        frac = (yv - y_lo) / (y_hi - y_lo)
        return (height - 1) - int(round(frac * (height - 1)))

    for idx, (name, arr) in enumerate(ys.items()):
        marker = MARKERS[idx % len(MARKERS)]
        # Connect consecutive points with linear interpolation.
        for i in range(x.size - 1):
            c0, c1 = col(x[i]), col(x[i + 1])
            for c in range(c0, c1 + 1):
                t = 0.0 if c1 == c0 else (c - c0) / (c1 - c0)
                yv = arr[i] + t * (arr[i + 1] - arr[i])
                r = row(yv)
                if canvas[r][c] == " ":
                    canvas[r][c] = "."
        for i in range(x.size):
            canvas[row(arr[i])][col(x[i])] = marker

    label_hi = f"{y_hi:.3g}"
    label_lo = f"{y_lo:.3g}"
    pad = max(len(label_hi), len(label_lo))
    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"{y_label:>{pad}}")
    for r, rowchars in enumerate(canvas):
        label = label_hi if r == 0 else (label_lo if r == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(rowchars))
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + f"  {x_lo:<10.4g}" + " " * max(0, width - 24) + f"{x_hi:>10.4g}"
    )
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(ys)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)
