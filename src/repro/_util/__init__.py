"""Internal utilities shared across the :mod:`repro` packages.

Nothing in this package is part of the public API; the stable surface is
re-exported from :mod:`repro` and its subpackages.
"""

from repro._util.plot import line_chart
from repro._util.rng import as_rng, spawn_rng
from repro._util.tables import format_table, format_series
from repro._util.validate import (
    check_dimension,
    check_positive_int,
    check_probability,
)

__all__ = [
    "as_rng",
    "spawn_rng",
    "format_table",
    "format_series",
    "line_chart",
    "check_dimension",
    "check_positive_int",
    "check_probability",
]
