"""ASCII table / series rendering used by the benchmark harness and CLI.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep that formatting in one place so every table in
``benchmarks/`` and ``repro.experiments.report`` looks identical.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _fmt_cell(value, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; floats are formatted with ``precision``
        digits, everything else with ``str``.
    title:
        Optional title line printed above the table.
    precision:
        Decimal places for float cells.

    Returns
    -------
    str
        Multi-line table string (no trailing newline).
    """
    str_rows = [[_fmt_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence,
    series: Mapping[str, Sequence],
    *,
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render one x-column plus one column per named series.

    This is the shape of every figure in the paper (x = number of disks,
    one curve per declustering method).
    """
    headers = [x_name, *series.keys()]
    columns = [x_values, *series.values()]
    n = len(x_values)
    for name, col in series.items():
        if len(col) != n:
            raise ValueError(f"series {name!r} has {len(col)} points, expected {n}")
    rows = [[col[i] for col in columns] for i in range(n)]
    return format_table(headers, rows, title=title, precision=precision)
